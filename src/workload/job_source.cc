#include "workload/job_source.hh"

#include <cmath>
#include <numbers>
#include <sstream>
#include <utility>

#include "util/csv.hh"
#include "util/error.hh"

namespace sleepscale {

namespace {

constexpr double minuteSeconds = 60.0;
/** Floor keeping the trace-modulated mean gap finite through
 * zero-load minutes. */
constexpr double minTraceLoad = 1e-4;

} // namespace

std::vector<Job>
materialize(JobSource &source, std::size_t max_jobs)
{
    std::vector<Job> jobs;
    Job job;
    while (jobs.size() < max_jobs && source.next(job))
        jobs.push_back(job);
    return jobs;
}

// ------------------------------------------------------ StationarySource

StationarySource::StationarySource(
    std::unique_ptr<Distribution> inter_arrival,
    std::unique_ptr<Distribution> service, std::uint64_t seed)
    : _interArrival(std::move(inter_arrival)),
      _service(std::move(service)), _rng(seed)
{
    fatalIf(!_interArrival || !_service,
            "StationarySource: needs both distributions");
}

StationarySource::StationarySource(const WorkloadSpec &spec,
                                   double utilization, std::uint64_t seed,
                                   double rate_scale)
    : _service(spec.makeService()), _rng(seed)
{
    fatalIf(rate_scale <= 0.0,
            "StationarySource: rate_scale must be positive");
    _interArrival = fitDistribution(
        spec.interArrivalMeanAt(utilization) / rate_scale,
        spec.interArrivalCv);
}

StationarySource::StationarySource(
    std::unique_ptr<Distribution> inter_arrival,
    std::unique_ptr<Distribution> service, Rng rng)
    : _interArrival(std::move(inter_arrival)),
      _service(std::move(service)), _rng(rng)
{
    fatalIf(!_interArrival || !_service,
            "StationarySource: needs both distributions");
}

bool
StationarySource::next(Job &out)
{
    _clock += _interArrival->sample(_rng);
    out = Job{};
    out.arrival = _clock;
    out.size = _service->sample(_rng);
    return true;
}

void
StationarySource::reset(std::uint64_t seed)
{
    _rng = Rng(seed);
    _clock = 0.0;
}

std::unique_ptr<JobSource>
StationarySource::clone() const
{
    auto copy = std::make_unique<StationarySource>(
        _interArrival->clone(), _service->clone(), _rng);
    copy->_clock = _clock;
    return copy;
}

// ----------------------------------------------------- TraceDrivenSource

TraceDrivenSource::TraceDrivenSource(const WorkloadSpec &spec,
                                     UtilizationTrace trace,
                                     std::uint64_t seed,
                                     double rate_scale)
    : TraceDrivenSource(spec, std::move(trace), Rng(seed), rate_scale)
{}

TraceDrivenSource::TraceDrivenSource(const WorkloadSpec &spec,
                                     UtilizationTrace trace, Rng rng,
                                     double rate_scale)
    : _serviceMean(spec.serviceMean), _trace(std::move(trace)),
      _unitGap(fitDistribution(1.0, spec.interArrivalCv)),
      _service(spec.makeService()), _rateScale(rate_scale), _rng(rng)
{
    fatalIf(_trace.empty(), "TraceDrivenSource: empty trace");
    fatalIf(rate_scale <= 0.0,
            "TraceDrivenSource: rate_scale must be positive");
    fatalIf(_serviceMean <= 0.0,
            "TraceDrivenSource: serviceMean must be positive");
}

bool
TraceDrivenSource::next(Job &out)
{
    if (_done)
        return false;
    // Same construction as the paper's Section 6 generator: a unit-mean
    // gap with the workload's Cv, rescaled by the current minute's load.
    const double total = _trace.duration();
    while (_clock < total) {
        const auto idx =
            static_cast<std::size_t>(_clock / minuteSeconds);
        const double load = std::max(_trace.at(idx), minTraceLoad);
        const double mean_gap = _serviceMean / (load * _rateScale);
        _clock += mean_gap * _unitGap->sample(_rng);
        if (_clock < total) {
            out = Job{};
            out.arrival = _clock;
            out.size = _service->sample(_rng);
            return true;
        }
    }
    _done = true;
    return false;
}

void
TraceDrivenSource::reset(std::uint64_t seed)
{
    _rng = Rng(seed);
    _clock = 0.0;
    _done = false;
}

TraceDrivenSource::TraceDrivenSource(const TraceDrivenSource &other)
    : _serviceMean(other._serviceMean), _trace(other._trace),
      _unitGap(other._unitGap->clone()),
      _service(other._service->clone()), _rateScale(other._rateScale),
      _rng(other._rng), _clock(other._clock), _done(other._done)
{}

std::unique_ptr<JobSource>
TraceDrivenSource::clone() const
{
    return std::unique_ptr<TraceDrivenSource>(
        new TraceDrivenSource(*this));
}

// --------------------------------------------------------- BurstySource

BurstySource::BurstySource(const WorkloadSpec &spec, double utilization,
                           double burst_factor, double burst_mean_length,
                           double burst_mean_gap, std::uint64_t seed,
                           double rate_scale)
    : _service(spec.makeService()), _burstFactor(burst_factor),
      _burstMeanLength(burst_mean_length), _burstMeanGap(burst_mean_gap),
      _rng(seed)
{
    fatalIf(burst_factor < 1.0,
            "BurstySource: burst_factor must be >= 1");
    fatalIf(burst_mean_length <= 0.0 || burst_mean_gap <= 0.0,
            "BurstySource: episode means must be positive");
    fatalIf(rate_scale <= 0.0,
            "BurstySource: rate_scale must be positive");
    _gap = fitDistribution(
        spec.interArrivalMeanAt(utilization) / rate_scale,
        spec.interArrivalCv);
}

bool
BurstySource::next(Job &out)
{
    if (!_primed) {
        _stateEnd = _rng.exponential(_burstMeanGap);
        _primed = true;
    }
    _clock +=
        _gap->sample(_rng) / (_inBurst ? _burstFactor : 1.0);
    // Episode boundaries are honored at job granularity: once the clock
    // crosses the current episode's end, flip state (possibly several
    // times after a long quiet gap).
    while (_clock >= _stateEnd) {
        _inBurst = !_inBurst;
        _stateEnd += _rng.exponential(_inBurst ? _burstMeanLength
                                               : _burstMeanGap);
    }
    out = Job{};
    out.arrival = _clock;
    out.size = _service->sample(_rng);
    return true;
}

void
BurstySource::reset(std::uint64_t seed)
{
    _rng = Rng(seed);
    _clock = 0.0;
    _inBurst = false;
    _stateEnd = 0.0;
    _primed = false;
}

BurstySource::BurstySource(const BurstySource &other)
    : _gap(other._gap->clone()), _service(other._service->clone()),
      _burstFactor(other._burstFactor),
      _burstMeanLength(other._burstMeanLength),
      _burstMeanGap(other._burstMeanGap), _rng(other._rng),
      _clock(other._clock), _inBurst(other._inBurst),
      _stateEnd(other._stateEnd), _primed(other._primed)
{}

std::unique_ptr<JobSource>
BurstySource::clone() const
{
    return std::unique_ptr<BurstySource>(new BurstySource(*this));
}

// --------------------------------------------------------- ReplaySource

ReplaySource::ReplaySource(std::string path) : _path(std::move(path))
{
    open();
}

void
ReplaySource::open()
{
    _in.open(_path);
    fatalIf(!_in, "ReplaySource: cannot open '" + _path + "'");
}

void
ReplaySource::rowError(const std::string &what) const
{
    fatal("ReplaySource '" + _path + "' line " + std::to_string(_line) +
          ": " + what);
}

bool
ReplaySource::next(Job &out)
{
    std::string line;
    while (!_done && std::getline(_in, line)) {
        // A final line without a trailing newline sets eofbit, under
        // which tellg() would fail and poison the stream; clearing it
        // first keeps _pos a real offset, so the terminated and
        // unterminated spellings of the same log replay (and clone)
        // identically.
        if (_in.eof())
            _in.clear();
        _pos = _in.tellg();
        ++_line;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line.front() == '#')
            continue;

        std::vector<std::string> fields;
        {
            std::istringstream in(line);
            std::string cell;
            while (std::getline(in, cell, ','))
                fields.push_back(cell);
        }
        if (fields.size() < 2 || fields.size() > 3)
            rowError("expected 'arrival,size[,class]', got '" + line +
                     "'");

        double values[2];
        bool numeric = true;
        for (int i = 0; i < 2 && numeric; ++i)
            numeric = tryParseCsvDouble(fields[i], values[i]);
        if (!numeric) {
            // The first non-comment non-numeric row is a header;
            // anywhere else it is a malformed row.
            if (!_headerChecked) {
                _headerChecked = true;
                continue;
            }
            rowError("non-numeric field in '" + line + "'");
        }
        _headerChecked = true;

        const double arrival = values[0];
        const double size = values[1];
        if (!std::isfinite(arrival) || !std::isfinite(size))
            rowError("non-finite arrival or size");
        if (arrival < 0.0 || size < 0.0)
            rowError("negative arrival or size");
        if (arrival < _lastArrival)
            rowError("out-of-order arrival " + fields[0] +
                     " (previous " + std::to_string(_lastArrival) + ")");

        out = Job{};
        out.arrival = arrival;
        out.size = size;
        if (fields.size() == 3) {
            double cls = 0.0;
            if (!tryParseCsvDouble(fields[2], cls) || cls < 0.0 ||
                cls > 1e9 || cls != static_cast<double>(
                                        static_cast<int>(cls)))
                rowError("bad class '" + fields[2] + "'");
            out.classId = static_cast<int>(cls);
        }
        _lastArrival = arrival;
        ++_rows;
        return true;
    }
    const bool first_exhaustion = !_done;
    _done = true;
    if (first_exhaustion && _rows == 0) {
        fatal("ReplaySource '" + _path +
              "': no data rows (the file is empty, comment-only, or "
              "header-only); expected 'arrival,size[,class]' rows");
    }
    return false;
}

void
ReplaySource::reset(std::uint64_t)
{
    _in.close();
    _in.clear();
    _pos = 0;
    _line = 0;
    _rows = 0;
    _lastArrival = 0.0;
    _headerChecked = false;
    _done = false;
    open();
}

std::unique_ptr<JobSource>
ReplaySource::clone() const
{
    auto copy = std::make_unique<ReplaySource>(_path);
    // O(1) continuation: seek straight to the first unread byte. _pos
    // is always a real offset (next() clears eofbit before tellg), so
    // an unterminated final row needs no special case here.
    if (_done) {
        copy->_done = true;
    } else if (_pos != std::streampos(0)) {
        copy->_in.seekg(_pos);
        fatalIf(!copy->_in,
                "ReplaySource: cannot seek in '" + _path + "'");
    }
    copy->_pos = _pos;
    copy->_line = _line;
    copy->_rows = _rows;
    copy->_lastArrival = _lastArrival;
    copy->_headerChecked = _headerChecked;
    return copy;
}

// --------------------------------------------------------- VectorSource

VectorSource::VectorSource(std::vector<Job> jobs)
    : _owned(std::make_shared<const std::vector<Job>>(std::move(jobs)))
{
    _jobs = _owned.get();
}

VectorSource
VectorSource::view(const std::vector<Job> &jobs)
{
    VectorSource source;
    source._jobs = &jobs;
    return source;
}

bool
VectorSource::next(Job &out)
{
    if (_next >= _jobs->size())
        return false;
    out = (*_jobs)[_next++];
    return true;
}

void
VectorSource::reset(std::uint64_t)
{
    _next = 0;
}

std::unique_ptr<JobSource>
VectorSource::clone() const
{
    return std::unique_ptr<VectorSource>(new VectorSource(*this));
}

// ---------------------------------------------------------- combinators

namespace {

class MergeSource final : public JobSource
{
  public:
    explicit MergeSource(std::vector<std::unique_ptr<JobSource>> sources)
        : _sources(std::move(sources)), _pending(_sources.size()),
          _ready(_sources.size(), 0)
    {
        fatalIf(_sources.empty(), "merge: needs at least one source");
        for (const auto &source : _sources)
            fatalIf(!source, "merge: null source");
    }

    bool next(Job &out) override
    {
        if (!_primed) {
            for (std::size_t i = 0; i < _sources.size(); ++i)
                _ready[i] = _sources[i]->next(_pending[i]) ? 1 : 0;
            _primed = true;
        }
        // Lowest index wins ties: strict < keeps the scan stable.
        std::size_t best = _sources.size();
        for (std::size_t i = 0; i < _sources.size(); ++i) {
            if (_ready[i] && (best == _sources.size() ||
                              _pending[i].arrival <
                                  _pending[best].arrival))
                best = i;
        }
        if (best == _sources.size())
            return false;
        out = _pending[best];
        _ready[best] = _sources[best]->next(_pending[best]) ? 1 : 0;
        return true;
    }

    void reset(std::uint64_t seed) override
    {
        for (std::size_t i = 0; i < _sources.size(); ++i)
            _sources[i]->reset(mixSeed(seed + i));
        _primed = false;
    }

    std::unique_ptr<JobSource> clone() const override
    {
        std::vector<std::unique_ptr<JobSource>> copies;
        copies.reserve(_sources.size());
        for (const auto &source : _sources)
            copies.push_back(source->clone());
        auto copy = std::make_unique<MergeSource>(std::move(copies));
        copy->_pending = _pending;
        copy->_ready = _ready;
        copy->_primed = _primed;
        return copy;
    }

  private:
    std::vector<std::unique_ptr<JobSource>> _sources;
    std::vector<Job> _pending;  ///< One-job lookahead per source.
    std::vector<char> _ready;
    bool _primed = false;
};

class ScaleSource final : public JobSource
{
  public:
    ScaleSource(std::unique_ptr<JobSource> source, double rate_scale,
                double size_scale)
        : _source(std::move(source)), _rateScale(rate_scale),
          _sizeScale(size_scale)
    {
        fatalIf(!_source, "scale: null source");
        fatalIf(rate_scale <= 0.0 || size_scale <= 0.0,
                "scale: factors must be positive");
    }

    bool next(Job &out) override
    {
        if (!_source->next(out))
            return false;
        out.arrival /= _rateScale;
        out.size *= _sizeScale;
        return true;
    }

    void reset(std::uint64_t seed) override { _source->reset(seed); }

    std::unique_ptr<JobSource> clone() const override
    {
        return std::make_unique<ScaleSource>(_source->clone(),
                                             _rateScale, _sizeScale);
    }

  private:
    std::unique_ptr<JobSource> _source;
    double _rateScale;
    double _sizeScale;
};

class ThinSource final : public JobSource
{
  public:
    ThinSource(std::unique_ptr<JobSource> source, double keep_prob,
               std::uint64_t seed)
        : _source(std::move(source)), _keepProb(keep_prob), _rng(seed)
    {
        fatalIf(!_source, "thin: null source");
        fatalIf(keep_prob <= 0.0 || keep_prob > 1.0,
                "thin: keep probability must be in (0, 1]");
    }

    bool next(Job &out) override
    {
        while (_source->next(out)) {
            if (_rng.uniform() < _keepProb)
                return true;
        }
        return false;
    }

    void reset(std::uint64_t seed) override
    {
        _source->reset(mixSeed(seed));
        _rng = Rng(seed);
    }

    std::unique_ptr<JobSource> clone() const override
    {
        auto copy = std::make_unique<ThinSource>(_source->clone(),
                                                 _keepProb, 0);
        copy->_rng = _rng;
        return copy;
    }

  private:
    std::unique_ptr<JobSource> _source;
    double _keepProb;
    Rng _rng;
};

class TakeSource final : public JobSource
{
  public:
    TakeSource(std::unique_ptr<JobSource> source, std::size_t count)
        : _source(std::move(source)), _count(count)
    {
        fatalIf(!_source, "take: null source");
    }

    bool next(Job &out) override
    {
        if (_taken >= _count || !_source->next(out))
            return false;
        ++_taken;
        return true;
    }

    void reset(std::uint64_t seed) override
    {
        _source->reset(seed);
        _taken = 0;
    }

    std::unique_ptr<JobSource> clone() const override
    {
        auto copy =
            std::make_unique<TakeSource>(_source->clone(), _count);
        copy->_taken = _taken;
        return copy;
    }

  private:
    std::unique_ptr<JobSource> _source;
    std::size_t _count;
    std::size_t _taken = 0;
};

class UntilSource final : public JobSource
{
  public:
    UntilSource(std::unique_ptr<JobSource> source, double end_time)
        : _source(std::move(source)), _endTime(end_time)
    {
        fatalIf(!_source, "until: null source");
        fatalIf(end_time <= 0.0, "until: end time must be positive");
    }

    bool next(Job &out) override
    {
        if (_done || !_source->next(out) || out.arrival >= _endTime) {
            _done = true;
            return false;
        }
        return true;
    }

    void reset(std::uint64_t seed) override
    {
        _source->reset(seed);
        _done = false;
    }

    std::unique_ptr<JobSource> clone() const override
    {
        auto copy =
            std::make_unique<UntilSource>(_source->clone(), _endTime);
        copy->_done = _done;
        return copy;
    }

  private:
    std::unique_ptr<JobSource> _source;
    double _endTime;
    bool _done = false;
};

class DiurnalSource final : public JobSource
{
  public:
    DiurnalSource(std::unique_ptr<JobSource> source, double amplitude,
                  double period, double phase)
        : _source(std::move(source)), _amplitude(amplitude),
          _period(period), _phase(phase)
    {
        fatalIf(!_source, "diurnal: null source");
        fatalIf(amplitude < 0.0 || amplitude >= 1.0,
                "diurnal: amplitude must be in [0, 1)");
        fatalIf(period <= 0.0, "diurnal: period must be positive");
    }

    bool next(Job &out) override
    {
        if (!_source->next(out))
            return false;
        // Gap-preserving time warp: the child's gap shrinks where the
        // modulation m(t) is high, so the output rate follows the daily
        // curve while the gap distribution's shape is untouched.
        const double gap = out.arrival - _lastIn;
        _lastIn = out.arrival;
        const double m =
            1.0 + _amplitude *
                      std::sin(2.0 * std::numbers::pi *
                               (_outClock + _phase) / _period);
        _outClock += gap / m;
        out.arrival = _outClock;
        return true;
    }

    void reset(std::uint64_t seed) override
    {
        _source->reset(seed);
        _lastIn = 0.0;
        _outClock = 0.0;
    }

    std::unique_ptr<JobSource> clone() const override
    {
        auto copy = std::make_unique<DiurnalSource>(
            _source->clone(), _amplitude, _period, _phase);
        copy->_lastIn = _lastIn;
        copy->_outClock = _outClock;
        return copy;
    }

  private:
    std::unique_ptr<JobSource> _source;
    double _amplitude;
    double _period;
    double _phase;
    double _lastIn = 0.0;
    double _outClock = 0.0;
};

} // namespace

std::unique_ptr<JobSource>
merge(std::vector<std::unique_ptr<JobSource>> sources)
{
    return std::make_unique<MergeSource>(std::move(sources));
}

std::unique_ptr<JobSource>
merge(std::unique_ptr<JobSource> a, std::unique_ptr<JobSource> b)
{
    std::vector<std::unique_ptr<JobSource>> sources;
    sources.push_back(std::move(a));
    sources.push_back(std::move(b));
    return merge(std::move(sources));
}

std::unique_ptr<JobSource>
scale(std::unique_ptr<JobSource> source, double rate_scale,
      double size_scale)
{
    return std::make_unique<ScaleSource>(std::move(source), rate_scale,
                                         size_scale);
}

std::unique_ptr<JobSource>
thin(std::unique_ptr<JobSource> source, double keep_prob,
     std::uint64_t seed)
{
    return std::make_unique<ThinSource>(std::move(source), keep_prob,
                                        seed);
}

std::unique_ptr<JobSource>
take(std::unique_ptr<JobSource> source, std::size_t count)
{
    return std::make_unique<TakeSource>(std::move(source), count);
}

std::unique_ptr<JobSource>
until(std::unique_ptr<JobSource> source, double end_time)
{
    return std::make_unique<UntilSource>(std::move(source), end_time);
}

std::unique_ptr<JobSource>
diurnal(std::unique_ptr<JobSource> source, double amplitude,
        double period, double phase)
{
    return std::make_unique<DiurnalSource>(std::move(source), amplitude,
                                           period, phase);
}

// ------------------------------------------------------------- registry

Registry<JobSourceFactory> &
jobSourceRegistry()
{
    static Registry<JobSourceFactory> registry = [] {
        Registry<JobSourceFactory> r("job source");
        r.add("trace", [](const JobSourceConfig &config) {
            fatalIf(config.trace.empty(),
                    "job source 'trace': needs a non-empty trace");
            return std::make_unique<TraceDrivenSource>(
                config.workload, config.trace, config.seed,
                config.rateScale);
        });
        r.add("stationary", [](const JobSourceConfig &config) {
            return std::make_unique<StationarySource>(
                config.workload, config.utilization, config.seed,
                config.rateScale);
        });
        r.add("bursty", [](const JobSourceConfig &config) {
            return std::make_unique<BurstySource>(
                config.workload, config.utilization,
                config.burstRateFactor, config.burstMeanLength,
                config.burstMeanGap, config.seed, config.rateScale);
        });
        r.add("replay", [](const JobSourceConfig &config) {
            fatalIf(config.replayPath.empty(),
                    "job source 'replay': needs a CSV path "
                    "(ScenarioBuilder::replayPath / --replay)");
            return std::make_unique<ReplaySource>(config.replayPath);
        });
        return r;
    }();
    return registry;
}

std::unique_ptr<JobSource>
makeJobSource(const std::string &name, const JobSourceConfig &config)
{
    return jobSourceRegistry().get(name)(config);
}

} // namespace sleepscale
