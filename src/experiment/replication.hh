/**
 * @file
 * Replicated experiments with confidence intervals.
 *
 * A single simulation run is one Monte-Carlo draw: "SleepScale beats
 * fixed-frequency by X%" from one seed carries no error bar. This layer
 * runs any ScenarioSpec N times under derived per-replication seeds and
 * summarizes every metric (energy, average power, mean/p95/p99
 * response, QoS violation rate, per-state residencies, every engine
 * extra) with a mean, standard deviation, and Student-t confidence
 * interval:
 *
 *   ReplicationPlan plan(20);
 *   const ReplicatedResult r = plan.run(spec);
 *   r.metric("avg_power_w").mean();         // E[P] across replications
 *   r.metric("avg_power_w").ciHalfWidth();  // 95% CI half width
 *
 * Paired comparison with common random numbers sharpens A-vs-B deltas:
 * comparePaired() reuses the same replication seeds for both scenarios,
 * so the job streams are identical and the paired-t interval on the
 * per-replication difference cancels the stream-to-stream noise. A
 * predictor or strategy ordering is "statistically qualified" when the
 * paired CI on its delta excludes zero.
 *
 * Replication fans out on util/thread_pool with results stored by
 * replication index and reduced in index order, so — like the
 * policy-evaluation engine and ExperimentRunner — any pool width is
 * bit-identical to a sequential run. Lanes write disjoint slots of the
 * replication-indexed result buffer and never share a mutable scenario
 * (each replication copies the spec); docs/CONCURRENCY.md documents the
 * discipline and the TSan CI job enforces it. Methodology,
 * seed-derivation and Student-t assumptions are documented in
 * docs/STATISTICS.md.
 */

#ifndef SLEEPSCALE_EXPERIMENT_REPLICATION_HH
#define SLEEPSCALE_EXPERIMENT_REPLICATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/runner.hh"

namespace sleepscale {

/**
 * One metric summarized across replications: the per-replication
 * samples (index order) plus mean / stddev / Student-t CI accessors.
 */
struct MetricSummary
{
    std::string name;            ///< Metric key, e.g. "avg_power_w".
    std::vector<double> samples; ///< One value per replication.
    double confidence = 0.95;    ///< Two-sided CI coverage level.

    /** Number of replications summarized. */
    std::size_t count() const { return samples.size(); }

    /** Sample mean across replications; 0 when empty. */
    double mean() const;

    /** Unbiased sample standard deviation; 0 below two samples. */
    double stddev() const;

    /**
     * Student-t confidence-interval half width t* · s / sqrt(n) at the
     * summary's confidence level; 0 below two samples.
     */
    double ciHalfWidth() const;

    /** Lower CI endpoint, mean() - ciHalfWidth(). */
    double ciLow() const { return mean() - ciHalfWidth(); }

    /** Upper CI endpoint, mean() + ciHalfWidth(). */
    double ciHigh() const { return mean() + ciHalfWidth(); }

    /** Whether the CI covers `value` (endpoints inclusive). */
    bool covers(double value) const;

    /**
     * Whether the CI excludes zero — the delta is significant. Always
     * false below two samples: one Monte-Carlo draw has a zero-width
     * interval, and claiming significance from it would be exactly
     * the anecdote this layer exists to prevent.
     */
    bool excludesZero() const
    {
        return samples.size() >= 2 && !covers(0.0);
    }

    /** Printable "mean ± halfwidth" with `precision` digits. */
    std::string toString(int precision = 4) const;
};

/**
 * Build a MetricSummary from raw per-replication samples — the same CI
 * math the replication layer applies, reusable by tests and harnesses
 * that replicate outside ScenarioSpec (e.g. the analytic coverage
 * oracle in tests/statistics_test.cc).
 */
MetricSummary summarizeSamples(std::string name,
                               std::vector<double> samples,
                               double confidence = 0.95);

/** Outcome of a replicated scenario: N runs plus per-metric CIs. */
struct ReplicatedResult
{
    ScenarioSpec spec;        ///< Base scenario (original seed).
    double confidence = 0.95; ///< CI coverage level of every metric.

    /** Per-replication results, replication-index order; replication i
     * ran with seed ReplicationPlan::replicationSeed(spec.seed, i). */
    std::vector<ScenarioResult> replications;

    /** Per-metric summaries: the core metrics (mean_response_s,
     * p95_response_s, p99_response_s, avg_power_w, energy_j,
     * qos_violation) plus every extra shared by all replications —
     * per-state residency_* for the single-server and farm engines,
     * s3_residency for the multicore engine, and any other engine
     * extras. */
    std::vector<MetricSummary> metrics;

    /** Summary of a named metric; fatal() listing the known names when
     * absent. */
    const MetricSummary &metric(const std::string &name) const;

    /** Whether a named metric was summarized. */
    bool hasMetric(const std::string &name) const;
};

/**
 * Summarize already-run replications of one scenario — the reduction
 * ReplicationPlan::run applies after the fan-out.
 *
 * @param spec The base scenario the replications ran.
 * @param replications Per-replication results in index order.
 * @param confidence Two-sided CI coverage level in (0, 1).
 */
ReplicatedResult
summarizeReplications(const ScenarioSpec &spec,
                      std::vector<ScenarioResult> replications,
                      double confidence = 0.95);

/**
 * A paired A-vs-B comparison under common random numbers: both
 * scenarios ran the same replication seeds, and `deltas` holds the
 * paired-t summary of the per-replication difference (A minus B) for
 * every shared metric, plus "energy_savings_pct" and
 * "power_savings_pct" (100 · (1 - A/B), positive when A is cheaper).
 */
struct PairedComparison
{
    ReplicatedResult a; ///< First scenario's replicated result.
    ReplicatedResult b; ///< Second scenario's replicated result.

    /** Paired per-replication deltas (A - B), one per shared metric. */
    std::vector<MetricSummary> deltas;

    /** Delta summary of a named metric; fatal() when absent. */
    const MetricSummary &delta(const std::string &name) const;

    /** Whether the paired CI on a named delta excludes zero. */
    bool significant(const std::string &name) const
    {
        return delta(name).excludesZero();
    }
};

/**
 * Runs a scenario N times under derived seeds and reduces the results
 * into per-metric confidence intervals.
 */
class ReplicationPlan
{
  public:
    /**
     * @param replications Replication count N (>= 1; CIs need >= 2).
     * @param threads Fan-out width; 0 uses the hardware concurrency,
     *        1 runs sequentially. Results are bit-identical at any
     *        width (index-order reduction).
     * @param confidence Two-sided CI coverage level in (0, 1).
     */
    explicit ReplicationPlan(std::size_t replications,
                             std::size_t threads = 1,
                             double confidence = 0.95);

    /**
     * The seed replication `index` of a scenario seeded `base` runs
     * with: one splitmix64 step of base + (index + 1) · golden-ratio
     * increment. Deterministic, decorrelated across replications, and
     * shared across scenarios — the foundation of common random
     * numbers (replication i of spec A and of spec B see identical
     * job streams when both derive from the same base seed).
     */
    static std::uint64_t replicationSeed(std::uint64_t base,
                                         std::size_t index);

    /** Replication count N. */
    std::size_t replications() const { return _replications; }

    /** CI coverage level. */
    double confidence() const { return _confidence; }

    /**
     * Run `spec` N times (spec.replications is ignored in favour of
     * the plan's N) and summarize. Fan-out is deterministic: any
     * thread count yields bit-identical results.
     */
    ReplicatedResult run(const ScenarioSpec &spec) const;

    /**
     * Run two scenarios under common random numbers and report paired
     * deltas. Both scenarios derive their replication seeds from
     * `a.seed`, so replication i of each sees the identical job
     * stream regardless of `b.seed`.
     */
    PairedComparison comparePaired(const ScenarioSpec &a,
                                   const ScenarioSpec &b) const;

  private:
    std::size_t _replications;
    std::size_t _threads;
    double _confidence;
};

/**
 * Standard replicated-results table: label, engine, n, and mean ± CI
 * columns for µE[R], p95 (service times), E[P] watts, energy, and the
 * QoS violation rate.
 */
TablePrinter replicationTable(const std::vector<ReplicatedResult> &results);

/**
 * Paired-comparison table: one row per delta metric with the paired
 * mean, CI, and significance verdict.
 */
TablePrinter pairedTable(const PairedComparison &comparison);

/**
 * Serialize replicated results as CSV: scenario identity columns, n,
 * then <metric>_mean, <metric>_sd, <metric>_ci<level> triples for the
 * union of metrics across rows (blank where a row lacks the metric).
 */
std::string
replicatedToCsvString(const std::vector<ReplicatedResult> &results);

/** Write replicatedToCsvString() to a file, fatal() on I/O failure. */
void writeReplicatedCsv(const std::string &path,
                        const std::vector<ReplicatedResult> &results);

} // namespace sleepscale

#endif // SLEEPSCALE_EXPERIMENT_REPLICATION_HH
