#include "experiment/scenario.hh"

#include <sstream>

#include "core/predictor.hh"
#include "core/strategies.hh"
#include "farm/dispatcher.hh"
#include "fault/fault_source.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "workload/job_source.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

std::string
toString(EngineKind kind)
{
    switch (kind) {
      case EngineKind::SingleServer:
        return "single";
      case EngineKind::Farm:
        return "farm";
      case EngineKind::Multicore:
        return "multicore";
    }
    panic("toString: unknown EngineKind");
}

UtilizationTrace
TraceSpec::realize() const
{
    UtilizationTrace trace;
    if (kind == "es") {
        trace = synthEmailStoreTrace(days, seed);
    } else if (kind == "fs") {
        trace = synthFileServerTrace(days, seed);
    } else if (kind == "flat") {
        fatalIf(flatMinutes == 0,
                "TraceSpec: a flat trace needs flatMinutes >= 1");
        trace = UtilizationTrace(
            "flat", std::vector<double>(flatMinutes, flatLevel));
    } else {
        trace = UtilizationTrace::load(kind);
    }
    if (windowStartHour != 0 || windowEndHour != 24)
        trace = trace.dailyWindow(windowStartHour, windowEndHour);
    return trace;
}

std::string
TraceSpec::label() const
{
    std::ostringstream out;
    if (kind == "flat") {
        out << "flat(" << flatLevel << ")";
    } else {
        out << kind;
        if (windowStartHour != 0 || windowEndHour != 24)
            out << "[" << windowStartHour << "," << windowEndHour << ")";
    }
    return out.str();
}

void
ScenarioSpec::validate() const
{
    workloadRegistry().get(workload);
    platformRegistry().get(platform);
    fatalIf(trace.kind != "flat" && trace.days == 0,
            "ScenarioSpec '" + label + "': trace days must be >= 1");
    fatalIf(replications == 0,
            "ScenarioSpec '" + label + "': replications must be >= 1");
    switch (engine) {
      case EngineKind::SingleServer:
      case EngineKind::Farm:
        strategyRegistry().get(strategy);
        predictorRegistry().get(predictor);
        jobSourceRegistry().get(source);
        fatalIf(source == "replay" && replayPath.empty(),
                "ScenarioSpec '" + label +
                    "': the replay source needs replayPath()");
        fatalIf(sourceRateScale <= 0.0,
                "ScenarioSpec '" + label +
                    "': sourceRateScale must be positive");
        fatalIf(epochMinutes == 0,
                "ScenarioSpec '" + label + "': epochMinutes must be >= 1");
        fatalIf(rhoB <= 0.0 || rhoB >= 1.0,
                "ScenarioSpec '" + label + "': rhoB must be in (0, 1)");
        fatalIf(controllerProcessNoise <= 0.0 ||
                    controllerMeasurementNoise <= 0.0,
                "ScenarioSpec '" + label +
                    "': controller noise variances must be positive");
        fatalIf(controllerPole < 0.0 || controllerPole >= 1.0,
                "ScenarioSpec '" + label +
                    "': controllerPole must be in [0, 1)");
        fatalIf(controllerPeriod == 0,
                "ScenarioSpec '" + label +
                    "': controllerPeriod must be >= 1");
        break;
      case EngineKind::Multicore:
        fatalIf(cores == 0,
                "ScenarioSpec '" + label + "': cores must be >= 1");
        fatalIf(frequency <= 0.0 || frequency > 1.0,
                "ScenarioSpec '" + label +
                    "': frequency must be in (0, 1]");
        fatalIf(rho <= 0.0 || rho >= 1.0,
                "ScenarioSpec '" + label + "': rho must be in (0, 1)");
        fatalIf(jobCount == 0,
                "ScenarioSpec '" + label + "': jobCount must be >= 1");
        break;
    }
    if (engine == EngineKind::Farm) {
        dispatcherRegistry().get(dispatcher);
        fatalIf(farmSize == 0,
                "ScenarioSpec '" + label + "': farmSize must be >= 1");
        fatalIf(farmControl != "farm-wide" &&
                    farmControl != "per-server" &&
                    farmControl != "distributed",
                "ScenarioSpec '" + label + "': unknown farmControl '" +
                    farmControl +
                    "' (use \"farm-wide\", \"per-server\", or "
                    "\"distributed\")");
        fatalIf(!farmPlatforms.empty() &&
                    farmPlatforms.size() != farmSize,
                "ScenarioSpec '" + label + "': farmPlatforms lists " +
                    std::to_string(farmPlatforms.size()) +
                    " entries for a farm of " +
                    std::to_string(farmSize) +
                    " servers (one name per server, or none)");
        bool heterogeneous = false;
        for (const std::string &name : farmPlatforms) {
            platformRegistry().get(name);
            heterogeneous =
                heterogeneous || name != farmPlatforms.front();
        }
        fatalIf(heterogeneous && farmControl == "farm-wide",
                "ScenarioSpec '" + label +
                    "': a heterogeneous farmPlatforms mix needs "
                    "farmControl(\"per-server\") or "
                    "farmControl(\"distributed\")");
        faultSourceRegistry().get(faults);
        if (faults != "none") {
            fatalIf(mtbf <= 0.0 || mttr <= 0.0,
                    "ScenarioSpec '" + label +
                        "': mtbf and mttr must be positive seconds");
            fatalIf(retryBackoff <= 0.0,
                    "ScenarioSpec '" + label +
                        "': retryBackoff must be positive seconds");
            fatalIf(dropTimeout <= 0.0,
                    "ScenarioSpec '" + label +
                        "': dropTimeout must be positive seconds");
        }
    } else {
        fatalIf(faults != "none",
                "ScenarioSpec '" + label +
                    "': fault injection needs the farm engine");
    }
    fatalIf(!(optEpsilon > 0.0),
            "ScenarioSpec '" + label + "': optEpsilon must be > 0");
    fatalIf(reportRegret && engine != EngineKind::SingleServer,
            "ScenarioSpec '" + label +
                "': reportRegret() needs the single-server engine "
                "(the offline oracle replays one server's job log)");
}

ScenarioBuilder::ScenarioBuilder(std::string label)
{
    _spec.label = std::move(label);
}

ScenarioBuilder
ScenarioBuilder::from(const ScenarioSpec &spec)
{
    ScenarioBuilder builder(spec.label);
    builder._spec = spec;
    return builder;
}

ScenarioBuilder &
ScenarioBuilder::engine(EngineKind kind)
{
    _spec.engine = kind;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::workload(const std::string &name)
{
    _spec.workload = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::idealizedWorkload(bool on)
{
    _spec.idealizedWorkload = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::platform(const std::string &name)
{
    _spec.platform = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::trace(const std::string &kind)
{
    _spec.trace.kind = kind;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::traceDays(unsigned days)
{
    _spec.trace.days = days;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::traceSeed(std::uint64_t seed)
{
    _spec.trace.seed = seed;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::window(unsigned start_hour, unsigned end_hour)
{
    _spec.trace.windowStartHour = start_hour;
    _spec.trace.windowEndHour = end_hour;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::flatTrace(double level, std::size_t minutes)
{
    _spec.trace.kind = "flat";
    _spec.trace.flatLevel = level;
    _spec.trace.flatMinutes = minutes;
    _spec.trace.windowStartHour = 0;
    _spec.trace.windowEndHour = 24;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::source(const std::string &name)
{
    _spec.source = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::sourceUtilization(double level)
{
    _spec.sourceUtilization = level;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::sourceRateScale(double factor)
{
    _spec.sourceRateScale = factor;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::burstiness(double rate_factor, double mean_length,
                            double mean_gap)
{
    _spec.burstRateFactor = rate_factor;
    _spec.burstMeanLength = mean_length;
    _spec.burstMeanGap = mean_gap;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::replayPath(const std::string &path)
{
    _spec.source = "replay";
    _spec.replayPath = path;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::strategy(const std::string &name)
{
    _spec.strategy = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::epochMinutes(unsigned minutes)
{
    _spec.epochMinutes = minutes;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::overProvision(double alpha)
{
    _spec.overProvision = alpha;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::rhoB(double rho_b)
{
    _spec.rhoB = rho_b;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::qosMetric(QosMetric metric)
{
    _spec.qosMetric = metric;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::predictor(const std::string &name)
{
    _spec.predictor = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::predictorHistory(std::size_t taps)
{
    _spec.predictorHistory = taps;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::searchThreads(std::size_t threads)
{
    _spec.searchThreads = threads;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::prunedSearch(bool on)
{
    _spec.prunedSearch = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::controllerNoise(double process, double measurement)
{
    _spec.controllerProcessNoise = process;
    _spec.controllerMeasurementNoise = measurement;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::controllerPole(double pole)
{
    _spec.controllerPole = pole;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::controllerPeriod(unsigned epochs)
{
    _spec.controllerPeriod = epochs;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::recordDecisionTime(bool on)
{
    _spec.recordDecisionTime = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::farmSize(std::size_t servers)
{
    _spec.farmSize = servers;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::dispatcher(const std::string &name)
{
    _spec.dispatcher = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::packingSpillBacklog(double seconds)
{
    _spec.packingSpillBacklog = seconds;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::farmControl(const std::string &mode)
{
    _spec.farmControl = mode;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::farmShards(std::size_t shards)
{
    _spec.farmShards = shards;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::tailHistograms(bool on)
{
    _spec.tailHistograms = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::farmPlatforms(std::vector<std::string> names)
{
    _spec.farmPlatforms = std::move(names);
    if (!_spec.farmPlatforms.empty())
        _spec.farmSize = _spec.farmPlatforms.size();
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::decisionThreads(std::size_t threads)
{
    _spec.decisionThreads = threads;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::faults(const std::string &name)
{
    _spec.faults = name;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::faultRates(double mtbf_s, double mttr_s)
{
    _spec.mtbf = mtbf_s;
    _spec.mttr = mttr_s;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::retryBackoff(double seconds)
{
    _spec.retryBackoff = seconds;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::dropTimeout(double seconds)
{
    _spec.dropTimeout = seconds;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::cores(std::size_t count)
{
    _spec.cores = count;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::frequency(double f)
{
    _spec.frequency = f;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::coreState(LowPowerState state)
{
    _spec.coreState = state;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::packageSleepDelay(double seconds)
{
    _spec.packageSleepDelay = seconds;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::rho(double per_core_load)
{
    _spec.rho = per_core_load;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::jobCount(std::size_t count)
{
    _spec.jobCount = count;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::seed(std::uint64_t master_seed)
{
    _spec.seed = master_seed;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::replications(std::size_t count)
{
    _spec.replications = count;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::captureEpochs(bool on)
{
    _spec.captureEpochs = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::reportRegret(bool on)
{
    _spec.reportRegret = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::optEpsilon(double epsilon)
{
    _spec.optEpsilon = epsilon;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::label(const std::string &text)
{
    _spec.label = text;
    return *this;
}

ScenarioSpec
ScenarioBuilder::build() const
{
    _spec.validate();
    return _spec;
}

} // namespace sleepscale
