/**
 * @file
 * Scenario execution and sweep-grid expansion.
 *
 * ExperimentRunner is the single entry point over the three engines
 * (SleepScaleRuntime, FarmRuntime, MulticoreSim). It executes
 * ScenarioSpecs — one or a whole parameter grid — on a worker pool and
 * returns uniform ScenarioResults for table/CSV export:
 *
 *   ExperimentRunner runner;
 *   runner.addGrid(base, {sweepEpochMinutes({1, 5, 10, 15}),
 *                         sweepPredictors({"LC", "LMS", "NP"})});
 *   const auto results = runner.run();      // parallel by default
 *   resultsTable(results).print(std::cout);
 *
 * Determinism: every random stream an engine draws is derived from the
 * scenario's own seed inside runScenario(), never from shared state, so
 * a parallel run bit-matches a sequential run of the same grid.
 */

#ifndef SLEEPSCALE_EXPERIMENT_RUNNER_HH
#define SLEEPSCALE_EXPERIMENT_RUNNER_HH

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "experiment/scenario.hh"
#include "util/csv.hh"
#include "util/table_printer.hh"

namespace sleepscale {

/** Replicated-scenario outcome (see experiment/replication.hh). */
struct ReplicatedResult;

/** Per-back-end summary of a farm scenario (index order). */
struct ServerResultSummary
{
    std::string platform;          ///< Platform model the server ran.
    double meanResponse = 0.0;     ///< Server-local E[R], seconds.
    double avgPower = 0.0;         ///< Server-local E[P], watts.
    double energy = 0.0;           ///< Server-local energy, joules.
    std::uint64_t jobs = 0;        ///< Jobs dispatched to the server.
    bool withinBudget = false;     ///< Server met the QoS budget.
};

/** Uniform outcome of one scenario, whatever the engine. */
struct ScenarioResult
{
    ScenarioSpec spec;             ///< The scenario that produced this.

    double meanResponse = 0.0;     ///< Whole-run E[R], seconds.
    double normalizedMean = 0.0;   ///< µ E[R] (service times).
    double p95Response = 0.0;      ///< 95th-percentile response, s.
    double p99Response = 0.0;      ///< 99th-percentile response, s.
    double avgPower = 0.0;         ///< Whole-run E[P], watts.
    double energy = 0.0;           ///< Total energy, joules.
    double elapsed = 0.0;          ///< Simulated span, seconds.
    std::uint64_t jobs = 0;        ///< Jobs offered to the engine.
    bool withinBudget = false;     ///< QoS statistic met its budget.

    /** Engine-specific metrics (e.g. farm "per_server_w", multicore
     * "s3_residency", single-server "state_<name>" selection
     * fractions), uniform-schema exported. */
    std::vector<std::pair<std::string, double>> extras;

    /** Jobs routed to each back-end (farm engine only). */
    std::vector<std::uint64_t> jobsPerServer;

    /** Per-server breakdown (farm engine only; one row per back-end,
     * see serversTable()). */
    std::vector<ServerResultSummary> servers;

    /** Per-epoch detail when the spec asked for captureEpochs. */
    CsvTable epochs;

    /** Value of a named extra; fatal() when absent. */
    double extra(const std::string &key) const;
};

/**
 * One sweep dimension: a parameter name and the points it takes. Each
 * point carries a printable value (for labels and CSV) and a mutator
 * applied to the expanding spec.
 */
struct SweepAxis
{
    /** Axis name used in labels and CSV ("T", "predictor", ...). */
    std::string name;

    /** The points swept: printable value plus the spec mutator. */
    std::vector<std::pair<std::string, std::function<void(ScenarioSpec &)>>>
        points;
};

/** Sweep the policy update interval T (minutes). */
SweepAxis sweepEpochMinutes(const std::vector<unsigned> &values);

/** Sweep registered predictors by name. */
SweepAxis sweepPredictors(const std::vector<std::string> &names);

/** Sweep registered strategies by name. */
SweepAxis sweepStrategies(const std::vector<std::string> &names);

/** Sweep registered dispatchers by name. */
SweepAxis sweepDispatchers(const std::vector<std::string> &names);

/** Sweep the farm size. */
SweepAxis sweepFarmSizes(const std::vector<std::size_t> &sizes);

/** Sweep the farm control mode ("farm-wide" / "per-server"). */
SweepAxis sweepFarmControls(const std::vector<std::string> &modes);

/** Sweep the over-provisioning factor α. */
SweepAxis sweepOverProvision(const std::vector<double> &alphas);

/** Sweep the QoS metric (mean / tail). */
SweepAxis sweepQosMetrics(const std::vector<QosMetric> &metrics);

/** Sweep the multicore package-S3 delay (seconds; inf disables). */
SweepAxis sweepPackageSleepDelays(const std::vector<double> &delays);

/** Sweep the multicore core count. */
SweepAxis sweepCores(const std::vector<std::size_t> &counts);

/** Arbitrary custom dimension. */
SweepAxis customAxis(
    std::string name,
    std::vector<std::pair<std::string, std::function<void(ScenarioSpec &)>>>
        points);

/**
 * Expand a base spec against sweep axes into the full cross-product
 * grid (first axis outermost). Each scenario's label is the base label
 * plus one " name=value" suffix per axis.
 *
 * @param reseed_per_scenario When true, each grid point gets a distinct
 *        seed derived from (base seed, grid index); when false (the
 *        default) every point shares the base seed so compared policies
 *        see identical job streams, as in the paper's figures.
 */
std::vector<ScenarioSpec>
expandGrid(const ScenarioSpec &base, const std::vector<SweepAxis> &axes,
           bool reseed_per_scenario = false);

/** Executes scenarios — singly, or a set on a worker pool. */
class ExperimentRunner
{
  public:
    /**
     * @param threads Worker-pool width for run(); 0 uses the hardware
     *        concurrency (via ThreadPool::hardwareLanes, the one
     *        sanctioned topology probe). Results are identical for any
     *        width: each scenario writes a scenario-indexed slot and
     *        the report is assembled in index order after the join
     *        (docs/CONCURRENCY.md, invariant 1).
     */
    explicit ExperimentRunner(std::size_t threads = 0);

    /** Queue one scenario. */
    ExperimentRunner &add(ScenarioSpec spec);

    /** Queue a whole sweep grid (see expandGrid). */
    ExperimentRunner &addGrid(const ScenarioSpec &base,
                              const std::vector<SweepAxis> &axes,
                              bool reseed_per_scenario = false);

    /** The queued scenarios, in execution order. */
    const std::vector<ScenarioSpec> &scenarios() const
    {
        return _scenarios;
    }

    /**
     * Run every queued scenario and return results in queue order.
     * Scenarios execute concurrently on the worker pool; each derives
     * all randomness from its own seed, so the outcome is independent
     * of the pool width and of scheduling.
     */
    std::vector<ScenarioResult> run() const;

    /**
     * Run every queued scenario spec.replications times under derived
     * per-replication seeds and reduce each into per-metric Student-t
     * confidence intervals (experiment/replication.hh). The whole
     * (scenario × replication) space shares one worker pool; results
     * are reduced in queue/replication index order, so any pool width
     * is bit-identical to a sequential run.
     *
     * @param confidence Two-sided CI coverage level in (0, 1).
     */
    std::vector<ReplicatedResult>
    runReplicated(double confidence = 0.95) const;

    /** Execute one scenario synchronously (validates first). */
    static ScenarioResult runScenario(const ScenarioSpec &spec);

    /**
     * Execute one scenario spec.replications times (ReplicationPlan)
     * and summarize with confidence intervals.
     *
     * @param spec The scenario; spec.replications sets N.
     * @param threads Fan-out width (0 = hardware, 1 = sequential).
     * @param confidence Two-sided CI coverage level in (0, 1).
     */
    static ReplicatedResult runReplicated(const ScenarioSpec &spec,
                                          std::size_t threads = 1,
                                          double confidence = 0.95);

  private:
    std::size_t _threads;
    std::vector<ScenarioSpec> _scenarios;
};

/**
 * Standard results table: label, engine, µE[R], p95 (service times),
 * E[P] in watts, and budget verdict — the columns every bench prints.
 */
TablePrinter resultsTable(const std::vector<ScenarioResult> &results);

/**
 * Per-server breakdown of one farm result: server index, platform,
 * dispatched jobs, mean response, watts, and budget verdict — the view
 * a heterogeneous or per-server-control run is read through. fatal()
 * when the result carries no per-server rows (non-farm engines).
 */
TablePrinter serversTable(const ScenarioResult &result);

/**
 * Serialize results as CSV (uniform schema; the union of extras across
 * rows becomes trailing columns, blank where a row lacks the key).
 */
std::string resultsToCsvString(const std::vector<ScenarioResult> &results);

/** Write resultsToCsvString() to a file, fatal() on I/O failure. */
void writeResultsCsv(const std::string &path,
                     const std::vector<ScenarioResult> &results);

} // namespace sleepscale

#endif // SLEEPSCALE_EXPERIMENT_RUNNER_HH
