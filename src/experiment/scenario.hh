/**
 * @file
 * Declarative experiment scenarios.
 *
 * A ScenarioSpec is a complete, engine-agnostic description of one
 * SleepScale experiment: which trace feeds which workload on which
 * platform, which policy-management strategy and predictor run, and
 * which engine executes it (single server, dispatched farm, or
 * multi-core package). Every component is named against its registry,
 * so specs serialize naturally into sweep grids, tables, and CSV rows,
 * and misspelled names fail fast listing the registered alternatives.
 *
 * ScenarioBuilder is the fluent front door:
 *
 *   const ScenarioSpec spec = ScenarioBuilder("fig9")
 *       .workload("dns")
 *       .trace("es").traceDays(1).traceSeed(20140614).window(2, 20)
 *       .strategy("SS").epochMinutes(5).overProvision(0.35)
 *       .predictor("LC")
 *       .seed(99)
 *       .build();
 *
 * ExperimentRunner (runner.hh) executes specs and expands sweep grids.
 */

#ifndef SLEEPSCALE_EXPERIMENT_SCENARIO_HH
#define SLEEPSCALE_EXPERIMENT_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/qos.hh"
#include "power/low_power_state.hh"
#include "workload/utilization_trace.hh"

namespace sleepscale {

/** Which engine executes a scenario. */
enum class EngineKind
{
    SingleServer, ///< SleepScaleRuntime: one epoch-controlled server.
    Farm,         ///< FarmRuntime: dispatched multi-server farm.
    Multicore,    ///< MulticoreSim: package-gated multi-core part.
};

/** Engine name for reports ("single", "farm", "multicore"). */
std::string toString(EngineKind kind);

/**
 * Declarative description of the utilization trace feeding a scenario.
 *
 * `kind` is "es" (synthetic email store), "fs" (synthetic file server),
 * "flat" (constant level, for controlled studies), or a path to a CSV
 * saved by UtilizationTrace::save().
 */
struct TraceSpec
{
    std::string kind = "es";           ///< Trace family or CSV path.
    unsigned days = 1;                 ///< Days synthesized (es/fs).
    std::uint64_t seed = 20140614;     ///< Synthesis seed (es/fs).
    unsigned windowStartHour = 0;      ///< Daily window start (incl.).
    unsigned windowEndHour = 24;       ///< Daily window end (excl.).
    double flatLevel = 0.2;            ///< Constant level (flat).
    std::size_t flatMinutes = 120;     ///< Trace length (flat).

    /** Materialize the trace this spec describes. */
    UtilizationTrace realize() const;

    /** Short printable form, e.g. "es[2,20)" or "flat(0.2)". */
    std::string label() const;
};

/**
 * One fully specified experiment. Construct through ScenarioBuilder;
 * validate() cross-checks every component name against its registry.
 */
struct ScenarioSpec
{
    std::string label;                  ///< Row label in reports.
    EngineKind engine = EngineKind::SingleServer; ///< Executing engine.

    std::string workload = "dns";       ///< Workload registry name.
    bool idealizedWorkload = false;     ///< Use spec.idealized().
    std::string platform = "xeon";      ///< Platform registry name.
    TraceSpec trace;                    ///< Utilization trace feed.

    // Job source (single-server and farm engines). Sources stream jobs
    // into the engines epoch by epoch — nothing is materialized.
    std::string source = "trace";       ///< Job-source registry name.
    double sourceUtilization = 0.3;     ///< "stationary"/"bursty" level.
    double sourceRateScale = 1.0;       ///< Extra arrival-rate factor.
    double burstRateFactor = 4.0;       ///< "bursty": in-burst factor.
    double burstMeanLength = 120.0;     ///< "bursty": episode mean, s.
    double burstMeanGap = 1800.0;       ///< "bursty": inter-episode, s.
    std::string replayPath;             ///< "replay": CSV job log.

    // Policy management (single-server and farm engines).
    std::string strategy = "SS";        ///< Strategy registry name.
    unsigned epochMinutes = 5;          ///< Update interval T.
    double overProvision = 0.35;        ///< α.
    double rhoB = 0.8;                  ///< ρ_b anchoring the QoS budget.
    QosMetric qosMetric = QosMetric::MeanResponse; ///< Bounded statistic.
    std::string predictor = "LC";       ///< Predictor registry name.
    std::size_t predictorHistory = 10;  ///< Predictor tap count p.
    std::size_t searchThreads = 1;      ///< Policy-search fan-out width.
    bool prunedSearch = false;          ///< Prune the frequency scan.

    // "poet" controller knobs (docs/CONTROL.md); ignored by the
    // search strategies.
    double controllerProcessNoise = 1e-4;   ///< Kalman Q (> 0).
    double controllerMeasurementNoise = 1e-2; ///< Kalman R (> 0).
    double controllerPole = 0.0;        ///< Xup integrator pole, [0, 1).
    unsigned controllerPeriod = 1;      ///< Control period, epochs (>= 1).

    /** Time each epoch decision (decision_us_* result extras). The
     * reading never feeds simulated state, so metrics stay
     * bit-identical whether or not it is enabled. */
    bool recordDecisionTime = false;

    // Farm engine.
    std::size_t farmSize = 4;           ///< Back-end server count.
    std::string dispatcher = "random";  ///< Dispatcher registry name.
    double packingSpillBacklog = 1.0;   ///< Packing spill threshold, s.
    /** "farm-wide" | "per-server" | "distributed". */
    std::string farmControl = "farm-wide";
    /** Per-server platform names (empty = homogeneous `platform`; a
     * heterogeneous mix needs farmControl "per-server" or
     * "distributed"). */
    std::vector<std::string> farmPlatforms;
    std::size_t decisionThreads = 0;    ///< Per-server decision fan-out.
    std::size_t farmShards = 1;         ///< Accounting shard width (0 = auto).
    bool tailHistograms = true;         ///< Per-completion tail histograms.

    // Fault injection (farm engine only; docs/FAULTS.md). "none"
    // reproduces the fault-free farm bit-for-bit.
    std::string faults = "none";        ///< Fault-source registry name.
    double mtbf = 4.0 * 3600.0;         ///< Mean time between failures, s.
    double mttr = 300.0;                ///< Mean time to repair, s.
    double retryBackoff = 1.0;          ///< Failover backoff base, s.
    double dropTimeout = 300.0;         ///< Failover drop deadline, s.

    // Multicore engine (fixed package policy over a stationary load).
    std::size_t cores = 4;              ///< Cores in the package.
    double frequency = 1.0;             ///< Shared DVFS factor.
    LowPowerState coreState = LowPowerState::C6S0Idle; ///< Idle descent.
    double packageSleepDelay = 1.0;     ///< Joint-idle S3 delay, s.
    double rho = 0.1;                   ///< Per-core offered load.
    std::size_t jobCount = 60000;       ///< Stationary job count.

    /** Master seed; every RNG the engines draw is derived from it. */
    std::uint64_t seed = 1;

    /**
     * Monte-Carlo replications of this scenario (>= 1). A replicated
     * run executes the scenario `replications` times under derived
     * per-replication seeds (ReplicationPlan::replicationSeed) and
     * reports mean / stddev / Student-t confidence intervals per
     * metric instead of a single-seed point estimate. The utilization
     * trace (TraceSpec.seed) is shared by all replications — the "day
     * shape" is part of the scenario; only the job-stream and dispatch
     * randomness varies. See docs/STATISTICS.md.
     */
    std::size_t replications = 1;

    /** Capture the per-epoch CSV in the result (single-server only). */
    bool captureEpochs = false;

    /**
     * Solve the offline-optimal oracle over the run's completed job
     * log and report `offline_opt_energy` and `regret_pct` result
     * extras (single-server engine only; docs/OFFLINE_OPT.md). Under
     * replications the regret inherits the PR 5 CI machinery like any
     * other metric.
     */
    bool reportRegret = false;

    /** FPTAS accuracy knob of the regret oracle (> 0). */
    double optEpsilon = 0.05;

    /**
     * Cross-check every registry-keyed name and numeric range; fatal()
     * with the registered alternatives on the first mismatch.
     */
    void validate() const;
};

/** Fluent construction of ScenarioSpecs. */
class ScenarioBuilder
{
  public:
    /** @param label Row label of the scenario under construction. */
    explicit ScenarioBuilder(std::string label);

    /** Resume building from an existing spec (sweep expansion). */
    static ScenarioBuilder from(const ScenarioSpec &spec);

    /** Executing engine (single server, farm, or multicore). */
    ScenarioBuilder &engine(EngineKind kind);
    /** Workload by registry name ("dns", "mail", "google"). */
    ScenarioBuilder &workload(const std::string &name);
    /** Replace the workload with its idealized (M/M/1) variant. */
    ScenarioBuilder &idealizedWorkload(bool on = true);
    /** Platform model by registry name ("xeon", "atom"). */
    ScenarioBuilder &platform(const std::string &name);

    /** Trace kind: "es", "fs", "flat", or a CSV path. */
    ScenarioBuilder &trace(const std::string &kind);
    /** Days of synthetic trace to generate (es/fs kinds). */
    ScenarioBuilder &traceDays(unsigned days);
    /** Synthesis seed of the es/fs trace generators. */
    ScenarioBuilder &traceSeed(std::uint64_t seed);
    /** Daily evaluation window [start, end) in hours. */
    ScenarioBuilder &window(unsigned start_hour, unsigned end_hour);
    /** Shortcut: a flat trace at `level` for `minutes` minutes. */
    ScenarioBuilder &flatTrace(double level, std::size_t minutes);

    /** Job source: "trace", "stationary", "bursty", "replay", or any
     * name registered in jobSourceRegistry(). */
    ScenarioBuilder &source(const std::string &name);
    /** Offered load of the stationary/bursty sources. */
    ScenarioBuilder &sourceUtilization(double level);
    /** Extra arrival-rate multiplier on top of the source. */
    ScenarioBuilder &sourceRateScale(double factor);
    /** Bursty-source episode shape (factor >= 1; seconds). */
    ScenarioBuilder &burstiness(double rate_factor, double mean_length,
                                double mean_gap);
    /** CSV job log for the replay source (implies source("replay")). */
    ScenarioBuilder &replayPath(const std::string &path);

    /** Strategy by registry name ("SS", "DVFS", "R2H(C6)", ...). */
    ScenarioBuilder &strategy(const std::string &name);
    /** Policy update interval T, minutes. */
    ScenarioBuilder &epochMinutes(unsigned minutes);
    /** Over-provisioning factor α (Section 5.2.3 guard band). */
    ScenarioBuilder &overProvision(double alpha);
    /** Peak design utilization ρ_b anchoring the QoS budget. */
    ScenarioBuilder &rhoB(double rho_b);
    /** Which response-time statistic the QoS budget bounds. */
    ScenarioBuilder &qosMetric(QosMetric metric);
    /** Predictor by registry name ("NP", "LMS", "LC", "Offline"). */
    ScenarioBuilder &predictor(const std::string &name);
    /** Predictor tap/history count p. */
    ScenarioBuilder &predictorHistory(std::size_t taps);
    /** Candidate-search fan-out width (1 = serial, 0 = hardware). */
    ScenarioBuilder &searchThreads(std::size_t threads);
    /** Binary-search the QoS feasibility boundary per plan. */
    ScenarioBuilder &prunedSearch(bool on = true);
    /** "poet" Kalman noise variances Q and R (both > 0). */
    ScenarioBuilder &controllerNoise(double process, double measurement);
    /** "poet" xup integrator pole, in [0, 1). */
    ScenarioBuilder &controllerPole(double pole);
    /** "poet" control period as a multiple of the epoch (>= 1). */
    ScenarioBuilder &controllerPeriod(unsigned epochs);
    /** Time each epoch decision (decision_us_* result extras). */
    ScenarioBuilder &recordDecisionTime(bool on = true);

    /** Number of back-end servers in the farm. */
    ScenarioBuilder &farmSize(std::size_t servers);
    /** Dispatcher by registry name ("random", "JSQ", "packing", ...). */
    ScenarioBuilder &dispatcher(const std::string &name);
    /** Packing-dispatcher spill threshold, seconds of backlog. */
    ScenarioBuilder &packingSpillBacklog(double seconds);
    /** Farm control mode: "farm-wide", "per-server", or
     * "distributed". */
    ScenarioBuilder &farmControl(const std::string &mode);
    /** One platform name per server (implies farmSize; a mixed list
     * needs farmControl("per-server") or "distributed"). */
    ScenarioBuilder &farmPlatforms(std::vector<std::string> names);
    /** Per-server epoch-decision fan-out width (0 = auto). */
    ScenarioBuilder &decisionThreads(std::size_t threads);
    /** Farm accounting shard width (1 = serial, 0 = auto-size). */
    ScenarioBuilder &farmShards(std::size_t shards);
    /** Toggle per-completion response-tail histograms (off for
     * 10k+-server scale runs; percentile outputs then read 0). */
    ScenarioBuilder &tailHistograms(bool on);

    /** Fault source by registry name ("none", "mtbf", "correlated",
     * "scripted"); see docs/FAULTS.md. */
    ScenarioBuilder &faults(const std::string &name);
    /** Mean time between failures / to repair per server, seconds. */
    ScenarioBuilder &faultRates(double mtbf_s, double mttr_s);
    /** Failover retry backoff base, seconds (doubles per attempt). */
    ScenarioBuilder &retryBackoff(double seconds);
    /** Failover drop deadline past the original arrival, seconds. */
    ScenarioBuilder &dropTimeout(double seconds);

    /** Cores in the multicore package. */
    ScenarioBuilder &cores(std::size_t count);
    /** Shared DVFS frequency factor of the package. */
    ScenarioBuilder &frequency(double f);
    /** Per-core idle descent state of the package policy. */
    ScenarioBuilder &coreState(LowPowerState state);
    /** Joint-idle delay before the package drops to S3, seconds. */
    ScenarioBuilder &packageSleepDelay(double seconds);
    /** Per-core offered load of the multicore scenario. */
    ScenarioBuilder &rho(double per_core_load);
    /** Stationary job count the multicore scenario runs. */
    ScenarioBuilder &jobCount(std::size_t count);

    /** Master seed every engine-drawn RNG derives from. */
    ScenarioBuilder &seed(std::uint64_t master_seed);
    /** Monte-Carlo replications of the scenario (>= 1). */
    ScenarioBuilder &replications(std::size_t count);
    /** Capture the per-epoch CSV in the result (single-server). */
    ScenarioBuilder &captureEpochs(bool on = true);
    /** Report regret vs the offline-optimal oracle (single-server). */
    ScenarioBuilder &reportRegret(bool on = true);
    /** FPTAS accuracy of the regret oracle (> 0). */
    ScenarioBuilder &optEpsilon(double epsilon);
    /** Replace the scenario's row label. */
    ScenarioBuilder &label(const std::string &text);

    /** Validate and return the finished spec. */
    ScenarioSpec build() const;

  private:
    ScenarioSpec _spec;
};

} // namespace sleepscale

#endif // SLEEPSCALE_EXPERIMENT_SCENARIO_HH
