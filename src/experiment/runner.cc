#include "experiment/runner.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "analytic/offline_opt.hh"
#include "core/predictor.hh"
#include "core/runtime.hh"
#include "core/strategies.hh"
#include "farm/farm_runtime.hh"
#include "multicore/multicore_sim.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "workload/job_source.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

namespace {

std::string
formatDouble(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

StrategyKnobs
knobsOf(const ScenarioSpec &spec)
{
    StrategyKnobs knobs;
    knobs.epochMinutes = spec.epochMinutes;
    knobs.overProvision = spec.overProvision;
    knobs.rhoB = spec.rhoB;
    knobs.qosMetric = spec.qosMetric;
    knobs.searchThreads = spec.searchThreads;
    knobs.prunedSearch = spec.prunedSearch;
    knobs.controllerProcessNoise = spec.controllerProcessNoise;
    knobs.controllerMeasurementNoise = spec.controllerMeasurementNoise;
    knobs.controllerPole = spec.controllerPole;
    knobs.controllerPeriodEpochs = spec.controllerPeriod;
    return knobs;
}

/**
 * Per-epoch decision-cost extras (recordDecisionTime() scenarios
 * only, so timing-free runs keep their schema). The mean and p99 are
 * taken over decided epochs; an all-undecided run reports zeros.
 */
void
addDecisionExtras(ScenarioResult &result,
                  const std::vector<EpochReport> &epochs)
{
    std::vector<double> samples;
    samples.reserve(epochs.size());
    for (const EpochReport &epoch : epochs) {
        if (epoch.decided)
            samples.push_back(epoch.decisionMicros);
    }
    double mean = 0.0;
    double p99 = 0.0;
    if (!samples.empty()) {
        for (double sample : samples)
            mean += sample;
        mean /= static_cast<double>(samples.size());
        std::sort(samples.begin(), samples.end());
        const std::size_t index = static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(samples.size())));
        p99 = samples[std::min(index == 0 ? 0 : index - 1,
                               samples.size() - 1)];
    }
    result.extras.emplace_back("decision_us_mean", mean);
    result.extras.emplace_back("decision_us_p99", p99);
}

WorkloadSpec
workloadOf(const ScenarioSpec &spec)
{
    const WorkloadSpec workload = workloadByName(spec.workload);
    return spec.idealizedWorkload ? workload.idealized() : workload;
}

/**
 * Per-state idle-residency fractions as extras (single-server and
 * farm engines; the multicore engine reports package-level
 * s3_residency instead). Every state is emitted (zeros included) so
 * the metric schema is identical across replications — the
 * replication layer summarizes the extras shared by every
 * replication.
 */
void
addResidencyExtras(ScenarioResult &result, const SimStats &total)
{
    const double elapsed = total.elapsed();
    for (std::size_t i = 0; i < numLowPowerStates; ++i) {
        result.extras.emplace_back(
            "residency_" + toString(allLowPowerStates[i]),
            elapsed > 0.0 ? total.idleResidency[i] / elapsed : 0.0);
    }
}

/**
 * Build the scenario's job source. Engines pull from it epoch by
 * epoch — the stream is never materialized.
 *
 * @param rate_scale Engine-imposed arrival-rate multiplier (the farm
 *        aggregates farm-size times the per-server trace load).
 */
std::unique_ptr<JobSource>
sourceOf(const ScenarioSpec &spec, const WorkloadSpec &workload,
         const UtilizationTrace &trace, double rate_scale)
{
    JobSourceConfig config;
    config.workload = workload;
    config.trace = trace;
    config.utilization = spec.sourceUtilization;
    config.rateScale = spec.sourceRateScale * rate_scale;
    config.burstRateFactor = spec.burstRateFactor;
    config.burstMeanLength = spec.burstMeanLength;
    config.burstMeanGap = spec.burstMeanGap;
    config.replayPath = spec.replayPath;
    config.seed = spec.seed;
    return makeJobSource(spec.source, config);
}

ScenarioResult
runSingleServer(const ScenarioSpec &spec)
{
    const PlatformModel platform = platformByName(spec.platform);
    const WorkloadSpec workload = workloadOf(spec);
    const UtilizationTrace trace = spec.trace.realize();

    RuntimeConfig config =
        strategyConfigByName(spec.strategy, knobsOf(spec));
    config.recordDecisionTime = spec.recordDecisionTime;
    const SleepScaleRuntime runtime(platform, workload, config);

    const auto source = sourceOf(spec, workload, trace, 1.0);
    const auto predictor = makePredictor(spec.predictor,
                                         spec.predictorHistory,
                                         trace.values());
    const RuntimeResult run = runtime.run(*source, trace, *predictor);

    ScenarioResult result;
    result.spec = spec;
    result.meanResponse = run.meanResponse();
    result.normalizedMean = run.meanResponse() / workload.serviceMean;
    result.p95Response = run.p95Response();
    result.p99Response = run.total.responsePercentile(99.0);
    result.avgPower = run.avgPower();
    result.energy = run.total.energy;
    result.elapsed = run.total.elapsed();
    result.jobs = run.total.arrivals;
    result.withinBudget = run.withinBudget();
    result.extras.emplace_back("epochs",
                               static_cast<double>(run.epochs.size()));
    addResidencyExtras(result, run.total);
    const auto fractions = run.stateSelectionFractions();
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        if (fractions[i] > 0.0)
            result.extras.emplace_back(
                "state_" + toString(allLowPowerStates[i]), fractions[i]);
    }
    if (spec.recordDecisionTime)
        addDecisionExtras(result, run.epochs);
    if (spec.reportRegret) {
        // Re-materialize the exact job log the runtime consumed (same
        // source, same seed, same arrival cutoff) and hand it to the
        // offline oracle with the run's accounting horizon, so the
        // regret compares identical books (docs/OFFLINE_OPT.md).
        const auto replay = sourceOf(spec, workload, trace, 1.0);
        std::vector<Job> log;
        Job job;
        while (replay->next(job) && job.arrival < trace.duration())
            log.push_back(job);
        OfflineOptOptions options;
        options.epsilon = spec.optEpsilon;
        const OfflineOptimal oracle(platform, workload.scaling, options);
        const OfflineOptResult opt = oracle.solve(
            OfflineOptInstance::fromJobs(std::move(log),
                                         run.total.elapsed()));
        result.extras.emplace_back("offline_opt_energy", opt.energy);
        result.extras.emplace_back(
            "regret_pct",
            opt.energy > 0.0
                ? 100.0 * (run.total.energy / opt.energy - 1.0)
                : 0.0);
    }
    if (spec.captureEpochs)
        result.epochs = epochsToCsv(run);
    return result;
}

ScenarioResult
runFarm(const ScenarioSpec &spec)
{
    const PlatformModel platform = platformByName(spec.platform);
    const WorkloadSpec workload = workloadOf(spec);
    const UtilizationTrace trace = spec.trace.realize();

    FarmRuntimeConfig config;
    config.farmSize = spec.farmSize;
    config.dispatcher = spec.dispatcher;
    config.packingSpillBacklog = spec.packingSpillBacklog;
    config.control = spec.farmControl;
    config.platforms = spec.farmPlatforms;
    config.decisionThreads = spec.decisionThreads;
    config.shards = spec.farmShards;
    config.tailHistograms = spec.tailHistograms;
    // Decorrelated from the job-generation stream, which uses the raw
    // seed: identical seeds would put both generators in lock-step.
    config.dispatchSeed = mixSeed(spec.seed);
    config.faults = spec.faults;
    config.mtbf = spec.mtbf;
    config.mttr = spec.mttr;
    config.retryBackoff = spec.retryBackoff;
    config.dropTimeout = spec.dropTimeout;
    // A third decorrelated stream: the fault schedule must not move
    // when job or dispatch randomness does (and replication seeds flow
    // through spec.seed, so paired fault/no-fault comparisons share
    // schedules per replication).
    config.faultSeed = mixSeed(config.dispatchSeed);
    config.perServer = strategyConfigByName(spec.strategy, knobsOf(spec));
    config.perServer.recordDecisionTime = spec.recordDecisionTime;
    const FarmRuntime runtime(platform, workload, config);

    // The farm sees farm-size times the per-server trace load; replay
    // logs are taken literally (their recorded stream IS the aggregate).
    const double aggregate_scale =
        spec.source == "replay"
            ? 1.0
            : static_cast<double>(spec.farmSize);
    const auto source = sourceOf(spec, workload, trace, aggregate_scale);
    const auto predictor = makePredictor(spec.predictor,
                                         spec.predictorHistory,
                                         trace.values());
    const FarmRuntimeResult run =
        runtime.run(*source, trace, *predictor);

    ScenarioResult result;
    result.spec = spec;
    result.meanResponse = run.meanResponse();
    result.normalizedMean = run.meanResponse() / workload.serviceMean;
    result.p95Response = run.total.responsePercentile(95.0);
    result.p99Response = run.total.responsePercentile(99.0);
    result.avgPower = run.avgPower();
    result.energy = run.total.energy;
    result.elapsed = run.total.elapsed();
    result.jobs = run.total.arrivals;
    result.withinBudget = run.withinBudget();
    result.extras.emplace_back(
        "per_server_w",
        run.avgPower() / static_cast<double>(spec.farmSize));
    // Availability-plane metrics, emitted unconditionally (zeros and
    // all) so fault and no-fault result rows share one schema and
    // replication can compute per-metric CIs and paired deltas.
    result.extras.emplace_back("availability",
                               run.faults.availability(spec.farmSize));
    result.extras.emplace_back("goodput", run.faults.goodput());
    result.extras.emplace_back(
        "dropped_jobs", static_cast<double>(run.faults.dropped));
    result.extras.emplace_back(
        "retries", static_cast<double>(run.faults.retries));
    result.extras.emplace_back("degraded_s",
                               run.faults.degradedSeconds);
    result.extras.emplace_back("down_s", run.faults.downSeconds);
    addResidencyExtras(result, run.total);
    // Under per-server control the merged epochs carry server 0's
    // decisionMicros, which times the whole decision fan-out — the
    // farm-scale decision cost, not one server's.
    if (spec.recordDecisionTime)
        addDecisionExtras(result, run.epochs);
    result.jobsPerServer = run.jobsPerServer;
    result.servers.reserve(run.servers.size());
    for (const FarmServerReport &server : run.servers) {
        ServerResultSummary summary;
        summary.platform = server.platform;
        summary.meanResponse = server.meanResponse();
        summary.avgPower = server.avgPower();
        summary.energy = server.total.energy;
        summary.jobs = server.jobsRouted;
        summary.withinBudget = server.withinBudget;
        result.servers.push_back(std::move(summary));
    }
    return result;
}

ScenarioResult
runMulticore(const ScenarioSpec &spec)
{
    const PlatformModel platform = platformByName(spec.platform);
    const WorkloadSpec workload = workloadOf(spec);

    // The package sees cores-times one core's load with the workload's
    // gap shape; utilities capped to (0, 1) don't apply here, so the
    // arrival distribution is fitted directly.
    const double total_load =
        spec.rho * static_cast<double>(spec.cores);
    auto gaps = fitDistribution(workload.serviceMean / total_load,
                                workload.interArrivalCv);
    StationarySource source(std::move(gaps), workload.makeService(),
                            spec.seed);

    MulticorePolicy policy;
    policy.frequency = spec.frequency;
    policy.corePlan = SleepPlan::immediate(spec.coreState);
    policy.packageSleepDelay = spec.packageSleepDelay;
    const MulticoreStats stats =
        evaluateMulticorePolicy(platform, workload.scaling, spec.cores,
                                policy, source, spec.jobCount);

    ScenarioResult result;
    result.spec = spec;
    result.meanResponse = stats.response.mean();
    result.normalizedMean =
        stats.response.mean() / workload.serviceMean;
    result.p95Response = stats.responseHistogram.percentile(95.0);
    result.p99Response = stats.responseHistogram.percentile(99.0);
    result.avgPower = stats.avgPower();
    result.energy = stats.energy;
    result.elapsed = stats.elapsed;
    result.jobs = stats.completions;

    const QosConstraint qos =
        spec.qosMetric == QosMetric::MeanResponse
            ? QosConstraint::fromBaselineMean(spec.rhoB,
                                              workload.serviceMean)
            : QosConstraint::fromBaselineTail(spec.rhoB,
                                              workload.serviceMean);
    result.withinBudget =
        (spec.qosMetric == QosMetric::MeanResponse
             ? result.meanResponse
             : result.p95Response) <= qos.budget();

    result.extras.emplace_back(
        "s3_residency",
        stats.elapsed > 0.0 ? stats.packageS3Time / stats.elapsed : 0.0);
    result.extras.emplace_back(
        "package_wakes", static_cast<double>(stats.packageWakes));
    return result;
}

} // namespace

double
ScenarioResult::extra(const std::string &key) const
{
    for (const auto &entry : extras) {
        if (entry.first == key)
            return entry.second;
    }
    fatal("ScenarioResult '" + spec.label + "': no extra metric '" + key +
          "'");
}

SweepAxis
sweepEpochMinutes(const std::vector<unsigned> &values)
{
    SweepAxis axis{"T", {}};
    for (unsigned value : values) {
        axis.points.emplace_back(
            std::to_string(value),
            [value](ScenarioSpec &spec) { spec.epochMinutes = value; });
    }
    return axis;
}

SweepAxis
sweepPredictors(const std::vector<std::string> &names)
{
    SweepAxis axis{"predictor", {}};
    for (const std::string &name : names) {
        axis.points.emplace_back(
            name, [name](ScenarioSpec &spec) { spec.predictor = name; });
    }
    return axis;
}

SweepAxis
sweepStrategies(const std::vector<std::string> &names)
{
    SweepAxis axis{"strategy", {}};
    for (const std::string &name : names) {
        axis.points.emplace_back(
            name, [name](ScenarioSpec &spec) { spec.strategy = name; });
    }
    return axis;
}

SweepAxis
sweepDispatchers(const std::vector<std::string> &names)
{
    SweepAxis axis{"dispatcher", {}};
    for (const std::string &name : names) {
        axis.points.emplace_back(
            name, [name](ScenarioSpec &spec) { spec.dispatcher = name; });
    }
    return axis;
}

SweepAxis
sweepFarmSizes(const std::vector<std::size_t> &sizes)
{
    SweepAxis axis{"servers", {}};
    for (std::size_t size : sizes) {
        axis.points.emplace_back(
            std::to_string(size),
            [size](ScenarioSpec &spec) { spec.farmSize = size; });
    }
    return axis;
}

SweepAxis
sweepFarmControls(const std::vector<std::string> &modes)
{
    SweepAxis axis{"control", {}};
    for (const std::string &mode : modes) {
        axis.points.emplace_back(
            mode, [mode](ScenarioSpec &spec) { spec.farmControl = mode; });
    }
    return axis;
}

SweepAxis
sweepOverProvision(const std::vector<double> &alphas)
{
    SweepAxis axis{"alpha", {}};
    for (double alpha : alphas) {
        axis.points.emplace_back(
            formatDouble(alpha),
            [alpha](ScenarioSpec &spec) { spec.overProvision = alpha; });
    }
    return axis;
}

SweepAxis
sweepQosMetrics(const std::vector<QosMetric> &metrics)
{
    SweepAxis axis{"metric", {}};
    for (QosMetric metric : metrics) {
        axis.points.emplace_back(
            toString(metric),
            [metric](ScenarioSpec &spec) { spec.qosMetric = metric; });
    }
    return axis;
}

SweepAxis
sweepPackageSleepDelays(const std::vector<double> &delays)
{
    SweepAxis axis{"pkg_delay", {}};
    for (double delay : delays) {
        axis.points.emplace_back(
            std::isfinite(delay) ? formatDouble(delay) : "inf",
            [delay](ScenarioSpec &spec) {
                spec.packageSleepDelay = delay;
            });
    }
    return axis;
}

SweepAxis
sweepCores(const std::vector<std::size_t> &counts)
{
    SweepAxis axis{"cores", {}};
    for (std::size_t count : counts) {
        axis.points.emplace_back(
            std::to_string(count),
            [count](ScenarioSpec &spec) { spec.cores = count; });
    }
    return axis;
}

SweepAxis
customAxis(
    std::string name,
    std::vector<std::pair<std::string, std::function<void(ScenarioSpec &)>>>
        points)
{
    return SweepAxis{std::move(name), std::move(points)};
}

std::vector<ScenarioSpec>
expandGrid(const ScenarioSpec &base, const std::vector<SweepAxis> &axes,
           bool reseed_per_scenario)
{
    for (const SweepAxis &axis : axes)
        fatalIf(axis.points.empty(),
                "expandGrid: sweep axis '" + axis.name + "' is empty");

    std::vector<ScenarioSpec> grid{base};
    for (const SweepAxis &axis : axes) {
        std::vector<ScenarioSpec> next;
        next.reserve(grid.size() * axis.points.size());
        for (const ScenarioSpec &spec : grid) {
            for (const auto &[value, apply] : axis.points) {
                ScenarioSpec expanded = spec;
                apply(expanded);
                expanded.label += (expanded.label.empty() ? "" : " ") +
                                  axis.name + "=" + value;
                next.push_back(std::move(expanded));
            }
        }
        grid = std::move(next);
    }
    if (reseed_per_scenario) {
        for (std::size_t i = 0; i < grid.size(); ++i)
            grid[i].seed = mixSeed(base.seed + i);
    }
    return grid;
}

ExperimentRunner::ExperimentRunner(std::size_t threads)
    : _threads(threads)
{
    if (_threads == 0)
        _threads = ThreadPool::hardwareLanes();
}

ExperimentRunner &
ExperimentRunner::add(ScenarioSpec spec)
{
    spec.validate();
    _scenarios.push_back(std::move(spec));
    return *this;
}

ExperimentRunner &
ExperimentRunner::addGrid(const ScenarioSpec &base,
                          const std::vector<SweepAxis> &axes,
                          bool reseed_per_scenario)
{
    for (ScenarioSpec &spec : expandGrid(base, axes, reseed_per_scenario))
        add(std::move(spec));
    return *this;
}

ScenarioResult
ExperimentRunner::runScenario(const ScenarioSpec &spec)
{
    spec.validate();
    switch (spec.engine) {
      case EngineKind::SingleServer:
        return runSingleServer(spec);
      case EngineKind::Farm:
        return runFarm(spec);
      case EngineKind::Multicore:
        return runMulticore(spec);
    }
    panic("ExperimentRunner: unknown EngineKind");
}

std::vector<ScenarioResult>
ExperimentRunner::run() const
{
    std::vector<ScenarioResult> results(_scenarios.size());
    if (_scenarios.empty())
        return results;

    // Results land by scenario index, so any pool width bit-matches a
    // sequential run; the pool propagates the first failure.
    ThreadPool pool(std::min(_threads, _scenarios.size()));
    pool.parallelFor(_scenarios.size(),
                     [&](std::size_t i, std::size_t) {
                         results[i] = runScenario(_scenarios[i]);
                     });
    return results;
}

TablePrinter
resultsTable(const std::vector<ScenarioResult> &results)
{
    TablePrinter table({"scenario", "engine", "mu*E[R]", "p95 (svc)",
                        "E[P] [W]", "within budget?"});
    for (const ScenarioResult &result : results) {
        const double service_mean =
            result.meanResponse > 0.0 && result.normalizedMean > 0.0
                ? result.meanResponse / result.normalizedMean
                : 1.0;
        table.addRow({result.spec.label, toString(result.spec.engine),
                      std::to_string(result.normalizedMean),
                      std::to_string(result.p95Response / service_mean),
                      std::to_string(result.avgPower),
                      result.withinBudget ? "yes" : "no"});
    }
    return table;
}

TablePrinter
serversTable(const ScenarioResult &result)
{
    fatalIf(result.servers.empty(),
            "serversTable: scenario '" + result.spec.label +
                "' has no per-server results (farm engine only)");
    TablePrinter table({"server", "platform", "jobs", "E[R] [s]",
                        "E[P] [W]", "within budget?"});
    for (std::size_t i = 0; i < result.servers.size(); ++i) {
        const ServerResultSummary &server = result.servers[i];
        std::ostringstream response, power;
        response.precision(6);
        response << server.meanResponse;
        power.precision(6);
        power << server.avgPower;
        table.addRow({std::to_string(i), server.platform,
                      std::to_string(server.jobs), response.str(),
                      power.str(),
                      server.withinBudget ? "yes" : "no"});
    }
    return table;
}

std::string
resultsToCsvString(const std::vector<ScenarioResult> &results)
{
    // The union of extra keys, in first-seen order, pads the schema so
    // mixed-engine result sets still export one rectangular table.
    std::vector<std::string> extra_keys;
    for (const ScenarioResult &result : results) {
        for (const auto &entry : result.extras) {
            bool known = false;
            for (const std::string &key : extra_keys)
                known = known || key == entry.first;
            if (!known)
                extra_keys.push_back(entry.first);
        }
    }

    std::ostringstream out;
    out << "label,engine,workload,trace,strategy,predictor,seed,"
           "mean_response_s,normalized_mean,p95_response_s,"
           "p99_response_s,avg_power_w,energy_j,elapsed_s,jobs,"
           "within_budget";
    for (const std::string &key : extra_keys)
        out << ',' << key;
    out << '\n';

    for (const ScenarioResult &result : results) {
        const ScenarioSpec &spec = result.spec;
        out << csvQuote(spec.label) << ',' << toString(spec.engine)
            << ',' << spec.workload << ','
            << csvQuote(spec.trace.label()) << ','
            << csvQuote(spec.strategy) << ',' << spec.predictor << ','
            << spec.seed << ',' << result.meanResponse << ','
            << result.normalizedMean << ',' << result.p95Response << ','
            << result.p99Response << ','
            << result.avgPower << ',' << result.energy << ','
            << result.elapsed << ',' << result.jobs << ','
            << (result.withinBudget ? 1 : 0);
        for (const std::string &key : extra_keys) {
            out << ',';
            for (const auto &entry : result.extras) {
                if (entry.first == key) {
                    out << entry.second;
                    break;
                }
            }
        }
        out << '\n';
    }
    return out.str();
}

void
writeResultsCsv(const std::string &path,
                const std::vector<ScenarioResult> &results)
{
    std::ofstream file(path);
    fatalIf(!file, "writeResultsCsv: cannot open '" + path + "'");
    file << resultsToCsvString(results);
    fatalIf(!file.good(), "writeResultsCsv: write to '" + path +
                              "' failed");
}

} // namespace sleepscale
