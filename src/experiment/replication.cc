#include "experiment/replication.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hh"
#include "util/rng.hh"
#include "util/student_t.hh"
#include "util/thread_pool.hh"

namespace sleepscale {

namespace {

/**
 * The metric schema of one replication: the core result fields plus
 * every engine extra, in a stable order. The replication layer
 * summarizes the metrics this list shares across all replications.
 */
std::vector<std::pair<std::string, double>>
metricValues(const ScenarioResult &result)
{
    std::vector<std::pair<std::string, double>> values = {
        {"mean_response_s", result.meanResponse},
        {"normalized_mean", result.normalizedMean},
        {"p95_response_s", result.p95Response},
        {"p99_response_s", result.p99Response},
        {"avg_power_w", result.avgPower},
        {"energy_j", result.energy},
        {"elapsed_s", result.elapsed},
        {"jobs", static_cast<double>(result.jobs)},
        {"qos_violation", result.withinBudget ? 0.0 : 1.0},
    };
    values.insert(values.end(), result.extras.begin(),
                  result.extras.end());
    return values;
}

/** Look up a metric by name in one replication's schema. */
const double *
findValue(const std::vector<std::pair<std::string, double>> &values,
          const std::string &name)
{
    for (const auto &entry : values) {
        if (entry.first == name)
            return &entry.second;
    }
    return nullptr;
}

std::string
formatCell(double value, int precision)
{
    std::ostringstream out;
    out.precision(precision);
    out << value;
    return out.str();
}

/** CI column suffix for a confidence level, e.g. 0.95 -> "ci95". */
std::string
ciSuffix(double confidence)
{
    return "ci" + std::to_string(static_cast<int>(
                      std::lround(confidence * 100.0)));
}

} // namespace

// ---------------------------------------------------------- MetricSummary

double
MetricSummary::mean() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    return sum / static_cast<double>(samples.size());
}

double
MetricSummary::stddev() const
{
    const std::size_t n = samples.size();
    if (n < 2)
        return 0.0;
    const double m = mean();
    double m2 = 0.0;
    for (double x : samples)
        m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(n - 1));
}

double
MetricSummary::ciHalfWidth() const
{
    const std::size_t n = samples.size();
    if (n < 2)
        return 0.0;
    const double critical = studentTCriticalValue(confidence, n - 1);
    return critical * stddev() / std::sqrt(static_cast<double>(n));
}

bool
MetricSummary::covers(double value) const
{
    const double half = ciHalfWidth();
    const double m = mean();
    return value >= m - half && value <= m + half;
}

std::string
MetricSummary::toString(int precision) const
{
    std::ostringstream out;
    out.precision(precision);
    out << mean() << " ± " << ciHalfWidth();
    return out.str();
}

MetricSummary
summarizeSamples(std::string name, std::vector<double> samples,
                 double confidence)
{
    fatalIf(confidence <= 0.0 || confidence >= 1.0,
            "summarizeSamples: confidence must be in (0, 1)");
    MetricSummary summary;
    summary.name = std::move(name);
    summary.samples = std::move(samples);
    summary.confidence = confidence;
    return summary;
}

// ------------------------------------------------------- ReplicatedResult

const MetricSummary &
ReplicatedResult::metric(const std::string &name) const
{
    for (const MetricSummary &summary : metrics) {
        if (summary.name == name)
            return summary;
    }
    std::string known;
    for (const MetricSummary &summary : metrics)
        known += (known.empty() ? "" : ", ") + summary.name;
    fatal("ReplicatedResult '" + spec.label + "': no metric '" + name +
          "' (summarized: " + known + ")");
}

bool
ReplicatedResult::hasMetric(const std::string &name) const
{
    for (const MetricSummary &summary : metrics) {
        if (summary.name == name)
            return true;
    }
    return false;
}

ReplicatedResult
summarizeReplications(const ScenarioSpec &spec,
                      std::vector<ScenarioResult> replications,
                      double confidence)
{
    fatalIf(replications.empty(),
            "summarizeReplications: need at least one replication");
    fatalIf(confidence <= 0.0 || confidence >= 1.0,
            "summarizeReplications: confidence must be in (0, 1)");

    ReplicatedResult result;
    result.spec = spec;
    result.confidence = confidence;

    // Summarize every metric the first replication reports that all
    // later replications also report — engine extras with unstable
    // keys drop out instead of producing ragged sample sets.
    std::vector<std::vector<std::pair<std::string, double>>> schemas;
    schemas.reserve(replications.size());
    for (const ScenarioResult &replication : replications)
        schemas.push_back(metricValues(replication));

    for (const auto &[name, first_value] : schemas.front()) {
        std::vector<double> samples{first_value};
        samples.reserve(schemas.size());
        bool shared = true;
        for (std::size_t i = 1; i < schemas.size() && shared; ++i) {
            const double *value = findValue(schemas[i], name);
            if (value == nullptr)
                shared = false;
            else
                samples.push_back(*value);
        }
        if (shared)
            result.metrics.push_back(summarizeSamples(
                name, std::move(samples), confidence));
    }

    result.replications = std::move(replications);
    return result;
}

// ------------------------------------------------------- PairedComparison

const MetricSummary &
PairedComparison::delta(const std::string &name) const
{
    for (const MetricSummary &summary : deltas) {
        if (summary.name == name)
            return summary;
    }
    fatal("PairedComparison '" + a.spec.label + "' vs '" + b.spec.label +
          "': no delta metric '" + name + "'");
}

// -------------------------------------------------------- ReplicationPlan

ReplicationPlan::ReplicationPlan(std::size_t replications,
                                 std::size_t threads, double confidence)
    : _replications(replications), _threads(threads),
      _confidence(confidence)
{
    fatalIf(_replications == 0,
            "ReplicationPlan: replications must be >= 1");
    fatalIf(_confidence <= 0.0 || _confidence >= 1.0,
            "ReplicationPlan: confidence must be in (0, 1)");
    if (_threads == 0)
        _threads = ThreadPool::hardwareLanes();
}

std::uint64_t
ReplicationPlan::replicationSeed(std::uint64_t base, std::size_t index)
{
    // One splitmix64 step along the golden-ratio sequence: the same
    // derivation the generator's own seeding uses, so replication
    // streams are decorrelated from each other and from the base run.
    constexpr std::uint64_t goldenGamma = 0x9E3779B97F4A7C15ULL;
    return mixSeed(base +
                   goldenGamma * (static_cast<std::uint64_t>(index) + 1));
}

ReplicatedResult
ReplicationPlan::run(const ScenarioSpec &spec) const
{
    spec.validate();
    std::vector<ScenarioResult> replications(_replications);

    // Results land in disjoint replication-indexed slots, so any pool
    // width bit-matches a sequential run: each replication derives all
    // randomness from its own derived seed, and the buffer is only
    // read after parallelFor joins every lane.
    ThreadPool pool(std::min(_threads, _replications));
    pool.parallelFor(_replications, [&](std::size_t i, std::size_t) {
        ScenarioSpec replication = spec;
        replication.seed = replicationSeed(spec.seed, i);
        replication.replications = 1;
        replications[i] = ExperimentRunner::runScenario(replication);
    });
    return summarizeReplications(spec, std::move(replications),
                                 _confidence);
}

PairedComparison
ReplicationPlan::comparePaired(const ScenarioSpec &a,
                               const ScenarioSpec &b) const
{
    // Common random numbers: both scenarios replicate under the seed
    // stream derived from a.seed, so replication i of each sees the
    // identical arrival stream and the paired delta cancels the
    // stream-to-stream Monte-Carlo noise.
    ScenarioSpec b_crn = b;
    b_crn.seed = a.seed;

    PairedComparison comparison;
    comparison.a = run(a);
    comparison.b = run(b_crn);

    for (const MetricSummary &metric_a : comparison.a.metrics) {
        if (!comparison.b.hasMetric(metric_a.name))
            continue;
        const MetricSummary &metric_b =
            comparison.b.metric(metric_a.name);
        std::vector<double> deltas(_replications);
        for (std::size_t i = 0; i < _replications; ++i)
            deltas[i] = metric_a.samples[i] - metric_b.samples[i];
        comparison.deltas.push_back(summarizeSamples(
            metric_a.name, std::move(deltas), _confidence));
    }

    // Relative savings of A over B, in percent (positive = A cheaper).
    for (const char *name : {"energy_j", "avg_power_w"}) {
        if (!comparison.a.hasMetric(name) ||
            !comparison.b.hasMetric(name))
            continue;
        const MetricSummary &metric_a = comparison.a.metric(name);
        const MetricSummary &metric_b = comparison.b.metric(name);
        std::vector<double> savings(_replications);
        bool defined = true;
        for (std::size_t i = 0; i < _replications && defined; ++i) {
            if (metric_b.samples[i] == 0.0)
                defined = false;
            else
                savings[i] = 100.0 * (1.0 - metric_a.samples[i] /
                                                metric_b.samples[i]);
        }
        if (defined)
            comparison.deltas.push_back(summarizeSamples(
                std::string(name) == "energy_j" ? "energy_savings_pct"
                                                : "power_savings_pct",
                std::move(savings), _confidence));
    }
    return comparison;
}

// ------------------------------------------------- ExperimentRunner glue

ReplicatedResult
ExperimentRunner::runReplicated(const ScenarioSpec &spec,
                                std::size_t threads, double confidence)
{
    return ReplicationPlan(spec.replications, threads, confidence)
        .run(spec);
}

std::vector<ReplicatedResult>
ExperimentRunner::runReplicated(double confidence) const
{
    const std::vector<ScenarioSpec> &specs = scenarios();
    std::vector<ReplicatedResult> results;
    if (specs.empty())
        return results;

    // Flatten (scenario, replication) into one index space so one pool
    // keeps every lane busy across the whole grid; the reduction walks
    // scenarios in queue order and replications in index order, so the
    // outcome is independent of the pool width.
    std::vector<std::size_t> offsets(specs.size() + 1, 0);
    for (std::size_t i = 0; i < specs.size(); ++i)
        offsets[i + 1] = offsets[i] + specs[i].replications;
    const std::size_t total = offsets.back();

    std::vector<ScenarioResult> flat(total);
    ThreadPool pool(std::min(_threads, total));
    pool.parallelFor(total, [&](std::size_t item, std::size_t) {
        const std::size_t scenario_index = static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), item) -
            offsets.begin() - 1);
        const ScenarioSpec &base = specs[scenario_index];
        ScenarioSpec replication = base;
        replication.seed = ReplicationPlan::replicationSeed(
            base.seed, item - offsets[scenario_index]);
        replication.replications = 1;
        flat[item] = runScenario(replication);
    });

    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::vector<ScenarioResult> replications(
            flat.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
            flat.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]));
        results.push_back(summarizeReplications(
            specs[i], std::move(replications), confidence));
    }
    return results;
}

// ------------------------------------------------------- tables and CSV

TablePrinter
replicationTable(const std::vector<ReplicatedResult> &results)
{
    TablePrinter table({"scenario", "engine", "n", "mu*E[R] ± CI",
                        "p95 (svc) ± CI", "E[P] [W] ± CI",
                        "energy [J] ± CI", "viol%"});
    for (const ReplicatedResult &result : results) {
        // Normalize response metrics to service times, as resultsTable
        // does, using the per-replication normalized mean directly.
        const MetricSummary &norm = result.metric("normalized_mean");
        const MetricSummary &mean_s = result.metric("mean_response_s");
        const MetricSummary &p95 = result.metric("p95_response_s");
        const double service_mean =
            mean_s.mean() > 0.0 && norm.mean() > 0.0
                ? mean_s.mean() / norm.mean()
                : 1.0;
        MetricSummary p95_norm = p95;
        for (double &x : p95_norm.samples)
            x /= service_mean;
        table.addRow(
            {result.spec.label, toString(result.spec.engine),
             std::to_string(result.replications.size()),
             norm.toString(), p95_norm.toString(),
             result.metric("avg_power_w").toString(),
             result.metric("energy_j").toString(3),
             formatCell(100.0 * result.metric("qos_violation").mean(),
                        3)});
    }
    return table;
}

TablePrinter
pairedTable(const PairedComparison &comparison)
{
    TablePrinter table({"metric", "A - B mean", "± CI", "CI low",
                        "CI high", "significant?"});
    for (const MetricSummary &delta : comparison.deltas) {
        table.addRow({delta.name, formatCell(delta.mean(), 4),
                      formatCell(delta.ciHalfWidth(), 4),
                      formatCell(delta.ciLow(), 4),
                      formatCell(delta.ciHigh(), 4),
                      delta.excludesZero() ? "yes" : "no"});
    }
    return table;
}

std::string
replicatedToCsvString(const std::vector<ReplicatedResult> &results)
{
    // The union of metric names across rows, first-seen order, padded
    // blank where a row lacks the metric — one rectangular table for
    // mixed-engine result sets, like resultsToCsvString.
    std::vector<std::string> metric_names;
    for (const ReplicatedResult &result : results) {
        for (const MetricSummary &summary : result.metrics) {
            if (std::find(metric_names.begin(), metric_names.end(),
                          summary.name) == metric_names.end())
                metric_names.push_back(summary.name);
        }
    }

    const double level =
        results.empty() ? 0.95 : results.front().confidence;
    const std::string suffix = ciSuffix(level);

    std::ostringstream out;
    out << "label,engine,workload,strategy,predictor,seed,replications";
    for (const std::string &name : metric_names)
        out << ',' << name << "_mean," << name << "_sd," << name << '_'
            << suffix;
    out << '\n';

    for (const ReplicatedResult &result : results) {
        const ScenarioSpec &spec = result.spec;
        out << csvQuote(spec.label) << ',' << toString(spec.engine)
            << ',' << spec.workload << ',' << csvQuote(spec.strategy)
            << ',' << spec.predictor << ',' << spec.seed << ','
            << result.replications.size();
        for (const std::string &name : metric_names) {
            if (!result.hasMetric(name)) {
                out << ",,,";
                continue;
            }
            const MetricSummary &summary = result.metric(name);
            out << ',' << summary.mean() << ',' << summary.stddev()
                << ',' << summary.ciHalfWidth();
        }
        out << '\n';
    }
    return out.str();
}

void
writeReplicatedCsv(const std::string &path,
                   const std::vector<ReplicatedResult> &results)
{
    std::ofstream file(path);
    fatalIf(!file, "writeReplicatedCsv: cannot open '" + path + "'");
    file << replicatedToCsvString(results);
    fatalIf(!file.good(),
            "writeReplicatedCsv: write to '" + path + "' failed");
}

} // namespace sleepscale
