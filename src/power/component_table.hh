/**
 * @file
 * Per-component power breakdown (paper Table 2).
 *
 * The platform totals used by PlatformModel are sums over the component
 * inventory below. The breakdown is kept so the Table 2 bench can print
 * the paper's table and tests can check that the totals are consistent
 * with the PlatformPowerParams preset.
 */

#ifndef SLEEPSCALE_POWER_COMPONENT_TABLE_HH
#define SLEEPSCALE_POWER_COMPONENT_TABLE_HH

#include <string>
#include <vector>

namespace sleepscale {

/**
 * One platform component row of Table 2 (excluding the CPU, whose power
 * is a function of frequency and is handled by PlatformModel).
 */
struct ComponentPower
{
    std::string name;  ///< Component name, e.g. "RAM x6".
    double operating;  ///< W while the platform is in S0(a).
    double idle;       ///< W while in S0(i) (columns Idle/Sleep/DeepSleep).
    double deeperSleep;///< W while in S3.
};

/** The paper's Xeon-platform component inventory. */
const std::vector<ComponentPower> &xeonComponentTable();

/** Sum of the operating column (must equal PlatformPowerParams::s0Active). */
double componentTotalOperating(const std::vector<ComponentPower> &table);

/** Sum of the idle column (must equal PlatformPowerParams::s0Idle). */
double componentTotalIdle(const std::vector<ComponentPower> &table);

/** Sum of the deeper-sleep column (must equal PlatformPowerParams::s3). */
double componentTotalDeeperSleep(const std::vector<ComponentPower> &table);

} // namespace sleepscale

#endif // SLEEPSCALE_POWER_COMPONENT_TABLE_HH
