#include "power/component_table.hh"

namespace sleepscale {

const std::vector<ComponentPower> &
xeonComponentTable()
{
    // Table 2 of the paper: {name, S0(a) W, S0(i) W, S3 W}. The Idle,
    // Sleep, and Deep-sleep columns of the paper are identical for the
    // platform components (all are S0(i)), so a single idle figure is
    // stored.
    static const std::vector<ComponentPower> table = {
        {"Chipset x1", 7.8, 7.8, 7.8},
        {"RAM x6", 23.1, 10.4, 3.0},
        {"HDD x1", 6.2, 4.6, 0.8},
        {"NIC x1", 2.9, 1.7, 0.5},
        {"Fan x1", 10.0, 1.0, 0.0},
        {"PSU x1", 70.0, 35.0, 1.0},
    };
    return table;
}

double
componentTotalOperating(const std::vector<ComponentPower> &table)
{
    double total = 0.0;
    for (const auto &component : table)
        total += component.operating;
    return total;
}

double
componentTotalIdle(const std::vector<ComponentPower> &table)
{
    double total = 0.0;
    for (const auto &component : table)
        total += component.idle;
    return total;
}

double
componentTotalDeeperSleep(const std::vector<ComponentPower> &table)
{
    double total = 0.0;
    for (const auto &component : table)
        total += component.deeperSleep;
    return total;
}

} // namespace sleepscale
