#include "power/low_power_state.hh"

#include "util/error.hh"

namespace sleepscale {

std::string
toString(LowPowerState state)
{
    switch (state) {
      case LowPowerState::C0IdleS0Idle:
        return "C0(i)S0(i)";
      case LowPowerState::C1S0Idle:
        return "C1S0(i)";
      case LowPowerState::C3S0Idle:
        return "C3S0(i)";
      case LowPowerState::C6S0Idle:
        return "C6S0(i)";
      case LowPowerState::C6S3:
        return "C6S3";
    }
    panic("toString: unknown LowPowerState");
}

LowPowerState
lowPowerStateFromString(const std::string &name)
{
    for (LowPowerState state : allLowPowerStates) {
        if (toString(state) == name)
            return state;
    }
    fatal("lowPowerStateFromString: unknown state name '" + name + "'");
}

std::size_t
depthIndex(LowPowerState state)
{
    return static_cast<std::size_t>(state);
}

} // namespace sleepscale
