/**
 * @file
 * Whole-system power model (paper Section 3.1, Tables 2 and 4).
 *
 * Under the paper's linear-DVFS assumption the supply voltage V is
 * proportional to the frequency factor f, so the datasheet expressions
 * become: C0(a) dynamic power 130 V^2 f -> 130 f^3, C0(i) 75 V^2 f ->
 * 75 f^3, and C1 leakage 47 V^2 -> 47 f^2. C3/C6 powers and all platform
 * powers are constants. Total system power is CPU power plus platform
 * power for the matching S-state.
 */

#ifndef SLEEPSCALE_POWER_PLATFORM_MODEL_HH
#define SLEEPSCALE_POWER_PLATFORM_MODEL_HH

#include <functional>
#include <string>

#include "power/low_power_state.hh"
#include "util/registry.hh"

namespace sleepscale {

/** CPU power parameters (Table 2, CPU row). */
struct CpuPowerParams
{
    double activeCoeff = 130.0;   ///< W at V=f=1 in C0(a); scales as f^3.
    double idleCoeff = 75.0;      ///< W at V=f=1 in C0(i); scales as f^3.
    double haltCoeff = 47.0;      ///< W at V=1 in C1; scales as f^2.
    double sleepPower = 22.0;     ///< W in C3 (constant).
    double deepSleepPower = 15.0; ///< W in C6 (constant).
};

/** Platform (non-CPU) power totals per S-state (Table 2, bottom row). */
struct PlatformPowerParams
{
    double s0Active = 120.0; ///< W in S0(a).
    double s0Idle = 60.5;    ///< W in S0(i).
    double s3 = 13.1;        ///< W in S3.
};

/**
 * Average wake-up latencies back to C0(a)S0(a), in seconds
 * (Section 4.2 choices, drawn from the Table 4 ranges).
 */
struct WakeLatencies
{
    double c0IdleS0Idle = 0.0; ///< Clock already running.
    double c1S0Idle = 10e-6;
    double c3S0Idle = 100e-6;
    double c6S0Idle = 1e-3;
    double c6S3 = 1.0;
};

/** Table 4 latency ranges, used for validation and the table bench. */
struct WakeLatencyRange
{
    double lo;
    double hi;
};

/** Valid range for a state's wake-up latency per Table 4. */
WakeLatencyRange wakeLatencyRange(LowPowerState state);

/**
 * Complete power model of a server platform.
 *
 * Immutable after construction; the constructor validates the paper's
 * structural requirements (deeper states consume less power but take
 * longer to wake: P1 > P2 > ... > Pn and w1 < w2 < ... < wn, checked at
 * full frequency).
 */
class PlatformModel
{
  public:
    /**
     * @param name Human-readable platform name.
     * @param cpu CPU power parameters.
     * @param platform Platform power totals per S-state.
     * @param wake Wake-up latencies per low-power state.
     */
    PlatformModel(std::string name, CpuPowerParams cpu,
                  PlatformPowerParams platform, WakeLatencies wake);

    /** Platform name. */
    const std::string &name() const { return _name; }

    /** CPU parameter set. */
    const CpuPowerParams &cpu() const { return _cpu; }

    /** Platform parameter set. */
    const PlatformPowerParams &platform() const { return _platform; }

    /** Wake latency parameter set. */
    const WakeLatencies &wake() const { return _wake; }

    /**
     * Total power in the active state C0(a)S0(a) at frequency factor f.
     *
     * @param f DVFS frequency scaling factor in (0, 1].
     */
    double activePower(double f) const;

    /**
     * Total power in a combined low-power state.
     *
     * C0(i)S0(i) and C1S0(i) depend on the frequency the clock was left
     * at; the deeper states are frequency-independent.
     *
     * @param state The combined low-power state.
     * @param f DVFS frequency factor the system idles at.
     */
    double lowPower(LowPowerState state, double f) const;

    /** Average wake-up latency from a low-power state, in seconds. */
    double wakeLatency(LowPowerState state) const;

    /** Xeon-class preset reproducing the paper's Table 2 exactly. */
    static PlatformModel xeon();

    /**
     * Atom-class preset: ~10 W peak CPU dynamic power against the same
     * platform, reproducing the paper's qualitative Atom observations
     * (small processor power relative to platform power). Synthetic; the
     * paper cites external numbers it does not reprint (see DESIGN.md).
     */
    static PlatformModel atom();

  private:
    std::string _name;
    CpuPowerParams _cpu;
    PlatformPowerParams _platform;
    WakeLatencies _wake;

    void validate() const;
};

/** Factory signature stored in the platform registry. */
using PlatformFactory = std::function<PlatformModel()>;

/**
 * The platform registry. Ships with "xeon" and "atom"; extensions
 * register additional power models under new names.
 */
Registry<PlatformFactory> &platformRegistry();

/** Build a registered platform by name; fatal() on unknown names. */
PlatformModel platformByName(const std::string &name);

} // namespace sleepscale

#endif // SLEEPSCALE_POWER_PLATFORM_MODEL_HH
