#include "power/platform_model.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

WakeLatencyRange
wakeLatencyRange(LowPowerState state)
{
    // Table 4 of the paper (wake-up back to C0(a)S0(a)).
    switch (state) {
      case LowPowerState::C0IdleS0Idle:
        return {0.0, 0.0};
      case LowPowerState::C1S0Idle:
        return {1e-6, 10e-6};
      case LowPowerState::C3S0Idle:
        return {10e-6, 100e-6};
      case LowPowerState::C6S0Idle:
        return {0.1e-3, 1e-3};
      case LowPowerState::C6S3:
        return {1.0, 10.0};
    }
    panic("wakeLatencyRange: unknown LowPowerState");
}

PlatformModel::PlatformModel(std::string name, CpuPowerParams cpu,
                             PlatformPowerParams platform,
                             WakeLatencies wake)
    : _name(std::move(name)), _cpu(cpu), _platform(platform), _wake(wake)
{
    validate();
}

void
PlatformModel::validate() const
{
    fatalIf(_cpu.activeCoeff <= 0.0 || _cpu.idleCoeff <= 0.0 ||
                _cpu.haltCoeff <= 0.0 || _cpu.sleepPower <= 0.0 ||
                _cpu.deepSleepPower <= 0.0,
            "PlatformModel: CPU powers must be positive");
    fatalIf(_platform.s0Active <= 0.0 || _platform.s0Idle <= 0.0 ||
                _platform.s3 <= 0.0,
            "PlatformModel: platform powers must be positive");

    // Deeper states must consume less power (checked at f = 1) ...
    double previous_power = activePower(1.0);
    for (LowPowerState state : allLowPowerStates) {
        const double p = lowPower(state, 1.0);
        fatalIf(p >= previous_power,
                "PlatformModel: power must strictly decrease with sleep "
                "depth; violated at " + toString(state));
        previous_power = p;
    }

    // ... and take longer to wake up from.
    double previous_wake = -1.0;
    for (LowPowerState state : allLowPowerStates) {
        const double w = wakeLatency(state);
        fatalIf(w < previous_wake,
                "PlatformModel: wake latency must not decrease with sleep "
                "depth; violated at " + toString(state));
        fatalIf(w < 0.0, "PlatformModel: wake latencies must be >= 0");
        previous_wake = w;
    }
}

double
PlatformModel::activePower(double f) const
{
    fatalIf(f <= 0.0 || f > 1.0,
            "PlatformModel::activePower: f must be in (0, 1]");
    return _cpu.activeCoeff * f * f * f + _platform.s0Active;
}

double
PlatformModel::lowPower(LowPowerState state, double f) const
{
    fatalIf(f <= 0.0 || f > 1.0,
            "PlatformModel::lowPower: f must be in (0, 1]");
    switch (state) {
      case LowPowerState::C0IdleS0Idle:
        return _cpu.idleCoeff * f * f * f + _platform.s0Idle;
      case LowPowerState::C1S0Idle:
        return _cpu.haltCoeff * f * f + _platform.s0Idle;
      case LowPowerState::C3S0Idle:
        return _cpu.sleepPower + _platform.s0Idle;
      case LowPowerState::C6S0Idle:
        return _cpu.deepSleepPower + _platform.s0Idle;
      case LowPowerState::C6S3:
        return _cpu.deepSleepPower + _platform.s3;
    }
    panic("PlatformModel::lowPower: unknown LowPowerState");
}

double
PlatformModel::wakeLatency(LowPowerState state) const
{
    switch (state) {
      case LowPowerState::C0IdleS0Idle:
        return _wake.c0IdleS0Idle;
      case LowPowerState::C1S0Idle:
        return _wake.c1S0Idle;
      case LowPowerState::C3S0Idle:
        return _wake.c3S0Idle;
      case LowPowerState::C6S0Idle:
        return _wake.c6S0Idle;
      case LowPowerState::C6S3:
        return _wake.c6S3;
    }
    panic("PlatformModel::wakeLatency: unknown LowPowerState");
}

PlatformModel
PlatformModel::xeon()
{
    return PlatformModel("Xeon", CpuPowerParams{}, PlatformPowerParams{},
                         WakeLatencies{});
}

PlatformModel
PlatformModel::atom()
{
    // Synthetic Atom-class part: roughly 13x smaller CPU power envelope
    // than the Xeon preset, same platform and wake latencies. Preserves
    // the paper's "small processor power, relatively large platform
    // power" regime used for its qualitative Atom observations.
    CpuPowerParams cpu;
    cpu.activeCoeff = 10.0;
    cpu.idleCoeff = 5.5;
    cpu.haltCoeff = 3.5;
    cpu.sleepPower = 1.6;
    cpu.deepSleepPower = 1.0;
    return PlatformModel("Atom", cpu, PlatformPowerParams{},
                         WakeLatencies{});
}

Registry<PlatformFactory> &
platformRegistry()
{
    static Registry<PlatformFactory> registry = [] {
        Registry<PlatformFactory> r("platform");
        r.add("xeon", PlatformModel::xeon);
        r.add("atom", PlatformModel::atom);
        return r;
    }();
    return registry;
}

PlatformModel
platformByName(const std::string &name)
{
    return platformRegistry().get(name)();
}

} // namespace sleepscale
