/**
 * @file
 * Combined CPU/platform low-power states (paper Tables 1 and 3).
 *
 * The paper names states by concatenating the CPU C-state and platform
 * S-state, e.g. C0(i)S0(i). Only the combinations permitted by Table 3
 * exist: S0(a) pairs with C0(a) only, S3 pairs with C6 only, and S0(i)
 * pairs with every other C-state. The active state C0(a)S0(a) is not a
 * low-power state and is represented separately by the simulator.
 */

#ifndef SLEEPSCALE_POWER_LOW_POWER_STATE_HH
#define SLEEPSCALE_POWER_LOW_POWER_STATE_HH

#include <array>
#include <string>

namespace sleepscale {

/**
 * The five combined low-power states studied in the paper, ordered from
 * shallowest (largest power, smallest wake-up latency) to deepest.
 */
enum class LowPowerState
{
    C0IdleS0Idle, ///< Operating idle: clock runs at the DVFS setting.
    C1S0Idle,     ///< Halt: clock stopped, leakage only.
    C3S0Idle,     ///< Sleep: caches flushed, architectural state kept.
    C6S0Idle,     ///< Deep sleep: state saved to RAM, CPU voltage zero.
    C6S3,         ///< Deep sleep with the platform suspended to RAM.
};

/** Number of distinct low-power states. */
inline constexpr std::size_t numLowPowerStates = 5;

/** All low-power states, shallowest first. */
inline constexpr std::array<LowPowerState, numLowPowerStates>
allLowPowerStates = {
    LowPowerState::C0IdleS0Idle,
    LowPowerState::C1S0Idle,
    LowPowerState::C3S0Idle,
    LowPowerState::C6S0Idle,
    LowPowerState::C6S3,
};

/** Paper-style name, e.g. "C0(i)S0(i)". */
std::string toString(LowPowerState state);

/** Parse a paper-style name; fatal() on unknown names. */
LowPowerState lowPowerStateFromString(const std::string &name);

/** Zero-based depth index (C0(i)S0(i) = 0 ... C6S3 = 4). */
std::size_t depthIndex(LowPowerState state);

} // namespace sleepscale

#endif // SLEEPSCALE_POWER_LOW_POWER_STATE_HH
