/**
 * @file
 * A farm of SleepScale servers behind a dispatcher (paper Section 7).
 *
 * Each back-end is a full ServerSim — same power model, sleep descents,
 * and accounting as the single-server experiments — so farm-level
 * results compose from validated parts. The farm exposes the same
 * offer/advance/harvest interface as a single server, with aggregate
 * and per-server statistics. Back-ends may run heterogeneous platform
 * models (a big/little mix), in which case each server's power and
 * wake-latency accounting uses its own model.
 */

#ifndef SLEEPSCALE_FARM_SERVER_FARM_HH
#define SLEEPSCALE_FARM_SERVER_FARM_HH

#include <memory>
#include <vector>

#include "farm/dispatcher.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"

namespace sleepscale {

/** Fixed-size server farm (homogeneous or per-server platforms). */
class ServerFarm
{
  public:
    /**
     * Homogeneous farm: every server shares one power model.
     *
     * @param platform Power model shared by all servers (not owned).
     * @param scaling Service-time scaling law.
     * @param initial Policy every server starts with.
     * @param size Number of servers (>= 1).
     * @param dispatcher Routing strategy (owned).
     */
    ServerFarm(const PlatformModel &platform, ServiceScaling scaling,
               const Policy &initial, std::size_t size,
               std::unique_ptr<Dispatcher> dispatcher);

    /**
     * Heterogeneous farm: one power model per server.
     *
     * @param platforms Per-server power models (none owned, none null;
     *        all must outlive the farm). The farm size is
     *        platforms.size() (>= 1).
     * @param scaling Service-time scaling law shared by the servers.
     * @param initial Policy every server starts with.
     * @param dispatcher Routing strategy (owned).
     */
    ServerFarm(const std::vector<const PlatformModel *> &platforms,
               ServiceScaling scaling, const Policy &initial,
               std::unique_ptr<Dispatcher> dispatcher);

    /** Number of servers. */
    std::size_t size() const { return _servers.size(); }

    /**
     * Route and admit one arrival (non-decreasing arrival times).
     *
     * @return Index of the server that received the job.
     */
    std::size_t offerJob(const Job &job);

    /** Integrate all servers' accounting up to time t. */
    void advanceTo(double t);

    /** Switch every server to a policy at time t. */
    void setPolicy(const Policy &policy, double t);

    /** Switch one server's policy at time t. */
    void setPolicy(std::size_t server, const Policy &policy, double t);

    /** Policy currently in force on a server. */
    const Policy &policy(std::size_t server) const;

    /**
     * Harvest and merge every server's window. Energy and residencies
     * add across servers; response statistics pool all completions. The
     * elapsed window is one server's wall-clock span (not multiplied by
     * the farm size), so avgPower() reports farm watts.
     */
    SimStats harvestWindow();

    /** Harvest one server's window. */
    SimStats harvestWindow(std::size_t server);

    /** Harvest every server's window, one entry per server (per-server
     * control reads these individually and merges with mergeWindows()
     * for the farm view). */
    std::vector<SimStats> harvestWindows();

    /**
     * Merge per-server windows into one farm window with
     * harvestWindow()'s semantics: energies and residencies add,
     * responses pool, and the window span is the union wall-clock span
     * (so avgPower() reports farm watts). Needs >= 1 window.
     */
    static SimStats mergeWindows(const std::vector<SimStats> &windows);

    /** Power model of one server. */
    const PlatformModel &platform(std::size_t server) const;

    /** Jobs routed to each server so far. */
    const std::vector<std::uint64_t> &jobsPerServer() const
    {
        return _jobsRouted;
    }

    /** Committed backlog of one server at time t. */
    double backlog(std::size_t server, double t) const;

    /** Latest time across servers with committed work. */
    double nextFreeTime() const;

  private:
    std::vector<ServerSim> _servers;
    std::unique_ptr<Dispatcher> _dispatcher;
    std::vector<std::uint64_t> _jobsRouted;
    double _lastArrival = 0.0;

    std::vector<ServerSnapshot> snapshots(double now) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_SERVER_FARM_HH
