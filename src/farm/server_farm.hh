/**
 * @file
 * A farm of SleepScale servers behind a dispatcher (paper Section 7).
 *
 * Each back-end is a full ServerSim — same power model, sleep descents,
 * and accounting as the single-server experiments — so farm-level
 * results compose from validated parts. The farm exposes the same
 * offer/advance/harvest interface as a single server, with aggregate
 * and per-server statistics. Back-ends may run heterogeneous platform
 * models (a big/little mix), in which case each server's power and
 * wake-latency accounting uses its own model.
 */

#ifndef SLEEPSCALE_FARM_SERVER_FARM_HH
#define SLEEPSCALE_FARM_SERVER_FARM_HH

#include <memory>
#include <string>
#include <vector>

#include "farm/dispatcher.hh"
#include "farm/farm_calendar.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"

namespace sleepscale {

/** Accounting-shard worker pool (util/thread_pool.hh), forward-declared
 * so the header stays light. */
class ThreadPool;

/**
 * Availability lifecycle of one back-end under fault injection
 * (docs/FAULTS.md). Fault-free farms stay Up forever.
 */
enum class ServerLifecycle
{
    Up,         ///< Accepting and serving work.
    Draining,   ///< Crashed: rejects new work, finishes its backlog.
    Down,       ///< Crashed and empty: rejects work, idles dark.
    Recovering, ///< Restored but still inside the recovery delay.
};

/** Lifecycle state name ("up", "draining", "down", "recovering"). */
std::string toString(ServerLifecycle state);

/** Fixed-size server farm (homogeneous or per-server platforms). */
class ServerFarm
{
  public:
    /**
     * Homogeneous farm: every server shares one power model.
     *
     * @param platform Power model shared by all servers (not owned).
     * @param scaling Service-time scaling law.
     * @param initial Policy every server starts with.
     * @param size Number of servers (>= 1).
     * @param dispatcher Routing strategy (owned).
     */
    ServerFarm(const PlatformModel &platform, ServiceScaling scaling,
               const Policy &initial, std::size_t size,
               std::unique_ptr<Dispatcher> dispatcher);

    /**
     * Heterogeneous farm: one power model per server.
     *
     * @param platforms Per-server power models (none owned, none null;
     *        all must outlive the farm). The farm size is
     *        platforms.size() (>= 1).
     * @param scaling Service-time scaling law shared by the servers.
     * @param initial Policy every server starts with.
     * @param dispatcher Routing strategy (owned).
     */
    ServerFarm(const std::vector<const PlatformModel *> &platforms,
               ServiceScaling scaling, const Policy &initial,
               std::unique_ptr<Dispatcher> dispatcher);

    /** Number of servers. */
    std::size_t size() const { return _servers.size(); }

    /** Returned by tryOfferJob() when no server is accepting work. */
    static constexpr std::size_t noServer =
        static_cast<std::size_t>(-1);

    /**
     * Route and admit one arrival (non-decreasing arrival times).
     * Routing only considers servers accepting work at the arrival
     * instant; fatal() when every server is unavailable — callers that
     * can retry should use tryOfferJob() instead.
     *
     * @return Index of the server that received the job.
     */
    std::size_t offerJob(const Job &job);

    /**
     * Fault-tolerant variant of offerJob(): routes among the servers
     * accepting work at the arrival instant and returns noServer —
     * instead of fatal() — when there are none, so the caller can
     * back off and retry (FarmRuntime's failover path). With every
     * server up this is byte-identical to offerJob(), including the
     * dispatcher's RNG consumption.
     *
     * @return Index of the admitting server, or noServer.
     */
    std::size_t tryOfferJob(const Job &job);

    /** Integrate all servers' accounting up to time t (also accrues
     * per-server unavailability, see downSeconds()). */
    void advanceTo(double t);

    /**
     * Crash one server at time t: it stops accepting new work
     * (Draining while its committed backlog runs out, then Down) until
     * restoreServer(). Idempotent on an already-crashed server.
     */
    void failServer(std::size_t server, double t);

    /**
     * Restore a crashed server at time t: it re-enters service after
     * the configured recovery delay (Recovering in between). No-op on
     * a server that is not crashed.
     */
    void restoreServer(std::size_t server, double t);

    /** Additional delay between restoreServer() and accepting work
     * again, seconds (default 0: recovery is instantaneous). */
    void setRecoverySeconds(double seconds);

    /** Whether a server accepts new work at time `now`. */
    bool accepting(std::size_t server, double now) const;

    /** Number of servers accepting new work at time `now`. */
    std::size_t acceptingCount(double now) const;

    /** Lifecycle state of one server at time `now`. */
    ServerLifecycle lifecycle(std::size_t server, double now) const;

    /** Cumulative seconds this server has been unavailable (crashed or
     * recovering), accrued by advanceTo()/restoreServer(). */
    double downSeconds(std::size_t server) const;

    /** Sum of downSeconds() across the farm. */
    double totalDownSeconds() const;

    /** Switch every server to a policy at time t. */
    void setPolicy(const Policy &policy, double t);

    /** Switch one server's policy at time t. */
    void setPolicy(std::size_t server, const Policy &policy, double t);

    /** Policy currently in force on a server. */
    const Policy &policy(std::size_t server) const;

    /**
     * Harvest and merge every server's window. Energy and residencies
     * add across servers; response statistics pool all completions. The
     * elapsed window is one server's wall-clock span (not multiplied by
     * the farm size), so avgPower() reports farm watts.
     */
    SimStats harvestWindow();

    /** Harvest one server's window. */
    SimStats harvestWindow(std::size_t server);

    /** Harvest every server's window, one entry per server (per-server
     * control reads these individually and merges with mergeWindows()
     * for the farm view). */
    std::vector<SimStats> harvestWindows();

    /**
     * Merge per-server windows into one farm window with
     * harvestWindow()'s semantics: energies and residencies add,
     * responses pool, and the window span is the union wall-clock span
     * (so avgPower() reports farm watts). Needs >= 1 window.
     */
    static SimStats mergeWindows(const std::vector<SimStats> &windows);

    /** Power model of one server. */
    const PlatformModel &platform(std::size_t server) const;

    /** Jobs routed to each server so far. */
    const std::vector<std::uint64_t> &jobsPerServer() const
    {
        return _jobsRouted;
    }

    /** Committed backlog of one server at time t. */
    double backlog(std::size_t server, double t) const;

    /** Latest time across servers with committed work. */
    double nextFreeTime() const;

    /**
     * Shard per-server accounting (advanceTo(), harvestWindows())
     * across a worker pool. The pool is not owned and must outlive the
     * farm (or a later setShardPool(nullptr)). Per-server state is
     * independent and windows are merged in index order, so results
     * are bit-identical at any lane count, including nullptr (serial).
     */
    void setShardPool(ThreadPool *pool);

    /** Toggle per-completion response-tail histograms on every server
     * (ServerSim::setRecordTail). Off, no histogram buckets are ever
     * allocated — the memory lever for 10k+ server farms. */
    void setRecordTail(bool record);

    /** Calendar entries currently held (valid plus stale), exposed for
     * memory audits in the scale tests. */
    std::size_t calendarEntries() const
    {
        return _calendar.pendingEntries();
    }

  private:
    std::vector<ServerSim> _servers;
    std::unique_ptr<Dispatcher> _dispatcher;
    std::vector<std::uint64_t> _jobsRouted;
    double _lastArrival = 0.0;

    /** Per-server availability: the time a server (re-)enters service.
     * 0 initially (always accepting), +inf while crashed, restore time
     * plus the recovery delay while recovering. */
    std::vector<double> _acceptFrom;

    /** Per-server cumulative unavailability, seconds. */
    std::vector<double> _downSeconds;

    /** Per-server accrual marker: unavailability is accounted up to
     * this time (meaningful only while a server is unavailable). */
    std::vector<double> _downMark;

    /** Recovery delay applied by restoreServer(), seconds. */
    double _recoverySeconds = 0.0;

    /** Latest advanceTo() time (drives unavailability accrual). */
    double _lastAdvance = 0.0;

    /** Whether any server is currently crashed or recovering (fast
     * path: fault-free runs skip the eligibility filter entirely). */
    bool _anyUnavailable = false;

    /** Whether any server has ever crashed (fault-free farms skip the
     * per-server unavailability accrual loop entirely). */
    bool _everFailed = false;

    /** Mirror of each server's nextFreeTime(), updated on admission
     * only (ServerSim moves it nowhere else). Keys the calendar's
     * stale-entry detection and the idle set. */
    std::vector<double> _nextFree;

    /** Idle servers (lowest-index lookup for the dispatch fast path). */
    IdleSet _idleSet;

    /** Queue-empties events for busy servers (lazy min-heap). */
    BusyCalendar _calendar;

    /** Worker pool for sharded accounting (not owned; may be null). */
    ThreadPool *_shardPool = nullptr;

    /** Accrue one server's unavailability up to time t. */
    void accrueDown(std::size_t server, double t);

    /** Retire queue-empties events due by time t into the idle set. */
    void processCalendarUpTo(double t);

    /** Record an admission in the next-free mirror, idle set, and
     * calendar (no simulation effect). */
    void noteAdmission(std::size_t server);

    /** Run body(i) for every server, sharded over the pool when one is
     * set. The body must touch only server i's state. */
    template <typename Body>
    void forEachServer(const Body &body);
};

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_SERVER_FARM_HH
