/**
 * @file
 * Event-time index structures for the O(1)-dispatch farm core.
 *
 * The farm's routing fast path must answer two queries per arrival
 * without scanning every server: "lowest-index idle server" and
 * "busy server whose queue empties first (lowest index on ties)".
 * IdleSet answers the first with a hierarchical 64-ary bitmap;
 * BusyCalendar answers the second with a lazy min-heap of
 * (queue-empties time, server) entries keyed against the farm's
 * next-free mirror. Together they replace the per-arrival O(N)
 * snapshot scan with O(log N) work, which is what makes 10k–100k
 * server farms tractable (docs/FARM_SCALE.md).
 *
 * Both structures are bookkeeping only: they never touch simulation
 * state, so routing decisions made through them are bit-identical to
 * the legacy full-scan path.
 */

#ifndef SLEEPSCALE_FARM_FARM_CALENDAR_HH
#define SLEEPSCALE_FARM_FARM_CALENDAR_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sleepscale {

/**
 * Ordered set of idle server indices with O(levels) mutation and
 * lowest-member lookup (levels = log64 of the farm size, so at most 3
 * for 100k servers). Memory is one bit per server plus a 1/64
 * hierarchy overhead — O(1) per server.
 */
class IdleSet
{
  public:
    /** Empty set over zero servers (reassign to size before use). */
    IdleSet() = default;

    /**
     * Set over server indices [0, size).
     *
     * @param size Number of server slots.
     * @param full Start with every index a member (a fresh farm is
     *        all-idle) instead of empty.
     */
    explicit IdleSet(std::size_t size, bool full = false);

    /** Add an index to the set (no-op when already a member). */
    void insert(std::size_t index);

    /** Remove an index from the set (no-op when not a member). */
    void erase(std::size_t index);

    /** Whether an index is currently a member. */
    bool contains(std::size_t index) const;

    /** Lowest member index, or size() when the set is empty. */
    std::size_t lowest() const;

    /** Whether the set has no members. */
    bool empty() const { return _members == 0; }

    /** Number of members. */
    std::size_t count() const { return _members; }

    /** Number of server slots (the universe, not the membership). */
    std::size_t size() const { return _size; }

  private:
    std::size_t _size = 0;
    std::size_t _members = 0;

    /** _levels[0] holds one bit per server; each level above holds one
     * bit per 64-bit word of the level below (bit set iff the child
     * word is nonzero). The top level is a single word. */
    std::vector<std::vector<std::uint64_t>> _levels;
};

/** One scheduled queue-empties event: server becomes idle at `time`. */
struct CalendarEntry
{
    double time = 0.0;       ///< Queue-empties (next-free) time.
    std::size_t server = 0;  ///< Server the event belongs to.
};

/**
 * Lazy min-heap of queue-empties events, ordered by (time, server) so
 * ties break to the lowest server index exactly like the legacy
 * lowest-index dispatcher scans.
 *
 * Every admission pushes a fresh entry with the server's new next-free
 * time; earlier entries for the same server are not removed but become
 * *stale* (their time no longer matches the caller's next-free mirror,
 * which only ever moves forward). Stale entries sort before the valid
 * one and are discarded when they surface, so each admission costs
 * amortized O(log H) with H bounded by the number of admissions since
 * the last drain.
 */
class BusyCalendar
{
  public:
    /** Returned by earliestBusy() when no valid entry remains. */
    static constexpr std::size_t none = static_cast<std::size_t>(-1);

    /** Schedule a queue-empties event for a server. */
    void push(double time, std::size_t server)
    {
        _heap.push_back(CalendarEntry{time, server});
        std::push_heap(_heap.begin(), _heap.end(), later);
    }

    /** Whether any entries (valid or stale) remain. */
    bool empty() const { return _heap.empty(); }

    /** Entries currently held (valid plus stale), for memory audits. */
    std::size_t pendingEntries() const { return _heap.size(); }

    /**
     * Pop every event due at or before time t. Events whose time still
     * matches the server's entry in `next_free` are real transitions to
     * idle and are reported through `on_idle(server)`; stale entries
     * are discarded silently.
     *
     * @param t Drain horizon (inclusive).
     * @param next_free Per-server next-free mirror (the validity key).
     * @param on_idle Callback invoked once per server going idle.
     */
    template <typename OnIdle>
    void drainDue(double t, const std::vector<double> &next_free,
                  OnIdle &&on_idle)
    {
        while (!_heap.empty() && _heap.front().time <= t) {
            const CalendarEntry entry = _heap.front();
            std::pop_heap(_heap.begin(), _heap.end(), later);
            _heap.pop_back();
            if (entry.time == next_free[entry.server])
                on_idle(entry.server);
        }
    }

    /**
     * Server with the earliest valid queue-empties event (the
     * least-backlogged busy server once events due by "now" have been
     * drained), ties to the lowest index. Prunes stale entries from the
     * top of the heap as a side effect.
     *
     * @param next_free Per-server next-free mirror (the validity key).
     * @return Server index, or none when no valid entry remains.
     */
    std::size_t earliestBusy(const std::vector<double> &next_free)
    {
        while (!_heap.empty()
               && _heap.front().time != next_free[_heap.front().server]) {
            std::pop_heap(_heap.begin(), _heap.end(), later);
            _heap.pop_back();
        }
        return _heap.empty() ? none : _heap.front().server;
    }

  private:
    /** Max-heap comparator giving a min-heap on (time, server). */
    static bool later(const CalendarEntry &a, const CalendarEntry &b)
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.server > b.server;
    }

    std::vector<CalendarEntry> _heap;
};

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_FARM_CALENDAR_HH
