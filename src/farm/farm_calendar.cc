#include "farm/farm_calendar.hh"

#include <bit>

#include "util/error.hh"

namespace sleepscale {

namespace {

constexpr std::size_t wordBits = 64;

std::size_t
wordsFor(std::size_t bits)
{
    return (bits + wordBits - 1) / wordBits;
}

} // namespace

IdleSet::IdleSet(std::size_t size, bool full)
    : _size(size)
{
    // Build levels until one word summarizes everything; a single-word
    // top level makes lowest() a straight descent.
    std::size_t bits = size;
    do {
        const std::size_t words = wordsFor(std::max<std::size_t>(bits, 1));
        _levels.emplace_back(words, 0);
        bits = words;
    } while (bits > 1);

    if (full) {
        for (std::size_t i = 0; i < size; ++i)
            insert(i);
    }
}

void
IdleSet::insert(std::size_t index)
{
    fatalIf(index >= _size, "IdleSet::insert: index out of range");
    std::uint64_t &leaf = _levels[0][index / wordBits];
    const std::uint64_t bit = std::uint64_t{1} << (index % wordBits);
    if (leaf & bit)
        return;
    leaf |= bit;
    ++_members;
    std::size_t word = index / wordBits;
    for (std::size_t level = 1; level < _levels.size(); ++level) {
        _levels[level][word / wordBits] |=
            std::uint64_t{1} << (word % wordBits);
        word /= wordBits;
    }
}

void
IdleSet::erase(std::size_t index)
{
    fatalIf(index >= _size, "IdleSet::erase: index out of range");
    std::uint64_t &leaf = _levels[0][index / wordBits];
    const std::uint64_t bit = std::uint64_t{1} << (index % wordBits);
    if (!(leaf & bit))
        return;
    leaf &= ~bit;
    --_members;
    std::size_t word = index / wordBits;
    for (std::size_t level = 1; level < _levels.size(); ++level) {
        if (_levels[level - 1][word] != 0)
            break; // Siblings keep the summary bit alive.
        _levels[level][word / wordBits] &=
            ~(std::uint64_t{1} << (word % wordBits));
        word /= wordBits;
    }
}

bool
IdleSet::contains(std::size_t index) const
{
    fatalIf(index >= _size, "IdleSet::contains: index out of range");
    return (_levels[0][index / wordBits]
            >> (index % wordBits)) & std::uint64_t{1};
}

std::size_t
IdleSet::lowest() const
{
    if (_members == 0)
        return _size;
    // Descend from the single-word top level, taking the lowest set bit
    // at each level to reach the lowest leaf bit.
    std::size_t word = 0;
    for (std::size_t level = _levels.size(); level-- > 0;) {
        const std::uint64_t bits = _levels[level][word];
        fatalIf(bits == 0, "IdleSet::lowest: summary bit out of sync");
        word = word * wordBits
               + static_cast<std::size_t>(std::countr_zero(bits));
    }
    return word;
}

} // namespace sleepscale
