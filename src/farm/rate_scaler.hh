/**
 * @file
 * Zero-communication distributed rate scaling (the "distributed"
 * farm control mode).
 *
 * Rutten et al. (arXiv:2306.02215) study server farms where every
 * back-end provisions its own service rate from purely local arrival
 * observations — no dispatcher state, no shared predictor, no
 * coordination of any kind. DistributedRateScaler is that decision
 * rule packaged as an EpochDecider: each server keeps a Robbins–Monro
 * estimate of its local offered load and picks the lowest frequency
 * whose scaled utilization stays under a target, leaving the sleep
 * plan fixed. Plugged into FarmRuntime's per-server loop it gives the
 * farm a third control mode beside "farm-wide" and "per-server":
 * cheaper than the log-replay search (O(grid) per epoch, no job log)
 * and more decentralized than both (it ignores the shared utilization
 * predictor entirely).
 */

#ifndef SLEEPSCALE_FARM_RATE_SCALER_HH
#define SLEEPSCALE_FARM_RATE_SCALER_HH

#include <cstdint>
#include <vector>

#include "core/epoch_decider.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Knobs of the distributed rate-scaling rule. */
struct RateScalerOptions
{
    /** Utilization ceiling ρ* the chosen frequency must keep the
     * estimated load under; the natural anchor is the QoS design
     * point ρ_b (RuntimeConfig::rhoB). In (0, 1]. */
    double targetUtilization = 0.8;

    /** Floor of the Robbins–Monro gain: the step size is
     * max(1/k, floor) at the k-th observation, so the estimate
     * converges like a running mean early on but keeps adapting to
     * drift forever. In [0, 1]. */
    double gainFloor = 0.05;
};

/**
 * Local-load-tracking EpochDecider: estimate the server's offered
 * load λ̂ from its own epoch observations, then run the slowest
 * frequency f with λ̂ · scaling.factor(f) <= ρ*.
 *
 * Stateless apart from the scalar estimate (needsLog() is false), so
 * FarmRuntime skips per-server log collection entirely — the memory
 * profile of a 100k-server distributed farm is one double per server.
 */
class DistributedRateScaler final : public EpochDecider
{
  public:
    /**
     * @param frequencies Candidate frequency grid (each in (0, 1]);
     *        copied and sorted ascending.
     * @param scaling Service-time scaling law (maps frequency to the
     *        service-time multiplier the utilization check uses).
     * @param initial Policy run until the first decision; its sleep
     *        plan stays in force forever (rate scaling only moves the
     *        frequency).
     * @param options Target utilization and estimator gain floor.
     */
    DistributedRateScaler(std::vector<double> frequencies,
                          ServiceScaling scaling, const Policy &initial,
                          RateScalerOptions options);

    /** Never consumes a job log (the zero-communication point). */
    bool needsLog() const override { return false; }

    PolicyDecision decide(const EpochObservation &observation,
                          const std::vector<Job> &log) override;

    GuardedDecision
    decideGuarded(const EpochObservation &observation,
                  const std::vector<Job> &log,
                  const Policy &fallback) override;

    void reset() override;

    /** Current Robbins–Monro offered-load estimate λ̂. */
    double estimatedLoad() const { return _lambda; }

    /** Observations absorbed since construction or reset(). */
    std::uint64_t observations() const { return _samples; }

  private:
    std::vector<double> _frequencies;
    ServiceScaling _scaling;
    Policy _initial;
    RateScalerOptions _options;

    double _lambda = 0.0;
    std::uint64_t _samples = 0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_RATE_SCALER_HH
