#include "farm/server_farm.hh"

#include <algorithm>

#include "util/error.hh"

namespace sleepscale {

ServerFarm::ServerFarm(const PlatformModel &platform,
                       ServiceScaling scaling, const Policy &initial,
                       std::size_t size,
                       std::unique_ptr<Dispatcher> dispatcher)
    : _dispatcher(std::move(dispatcher))
{
    fatalIf(size == 0, "ServerFarm: need at least one server");
    fatalIf(!_dispatcher, "ServerFarm: dispatcher must not be null");
    _servers.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        _servers.emplace_back(platform, scaling, initial);
    _jobsRouted.assign(size, 0);
}

ServerFarm::ServerFarm(const std::vector<const PlatformModel *> &platforms,
                       ServiceScaling scaling, const Policy &initial,
                       std::unique_ptr<Dispatcher> dispatcher)
    : _dispatcher(std::move(dispatcher))
{
    fatalIf(platforms.empty(), "ServerFarm: need at least one server");
    fatalIf(!_dispatcher, "ServerFarm: dispatcher must not be null");
    _servers.reserve(platforms.size());
    for (const PlatformModel *platform : platforms) {
        fatalIf(platform == nullptr,
                "ServerFarm: per-server platform must not be null");
        _servers.emplace_back(*platform, scaling, initial);
    }
    _jobsRouted.assign(platforms.size(), 0);
}

std::vector<ServerSnapshot>
ServerFarm::snapshots(double now) const
{
    std::vector<ServerSnapshot> view(_servers.size());
    for (std::size_t i = 0; i < _servers.size(); ++i) {
        view[i].backlog = _servers[i].backlog(now);
        view[i].idle = _servers[i].idleAt(now);
    }
    return view;
}

std::size_t
ServerFarm::offerJob(const Job &job)
{
    fatalIf(job.arrival < _lastArrival,
            "ServerFarm::offerJob: arrivals must be non-decreasing");
    _lastArrival = job.arrival;

    const std::size_t pick =
        _dispatcher->route(job, snapshots(job.arrival));
    fatalIf(pick >= _servers.size(),
            "ServerFarm: dispatcher chose a server out of range");
    _servers[pick].offerJob(job);
    ++_jobsRouted[pick];
    return pick;
}

void
ServerFarm::advanceTo(double t)
{
    for (ServerSim &server : _servers)
        server.advanceTo(t);
}

void
ServerFarm::setPolicy(const Policy &policy, double t)
{
    for (ServerSim &server : _servers)
        server.setPolicy(policy, t);
}

void
ServerFarm::setPolicy(std::size_t server, const Policy &policy, double t)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::setPolicy: server index out of range");
    _servers[server].setPolicy(policy, t);
}

const Policy &
ServerFarm::policy(std::size_t server) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::policy: server index out of range");
    return _servers[server].policy();
}

SimStats
ServerFarm::harvestWindow()
{
    return mergeWindows(harvestWindows());
}

std::vector<SimStats>
ServerFarm::harvestWindows()
{
    std::vector<SimStats> windows;
    windows.reserve(_servers.size());
    for (ServerSim &server : _servers)
        windows.push_back(server.harvestWindow());
    return windows;
}

SimStats
ServerFarm::mergeWindows(const std::vector<SimStats> &windows)
{
    fatalIf(windows.empty(),
            "ServerFarm::mergeWindows: need at least one window");
    SimStats merged = windows.front();
    for (std::size_t i = 1; i < windows.size(); ++i) {
        const SimStats &window = windows[i];
        // Servers share the wall clock: add energies/residencies and
        // pool responses without extending the window span.
        merged.energy += window.energy;
        merged.busyTime += window.busyTime;
        merged.wakeTime += window.wakeTime;
        for (std::size_t s = 0; s < merged.idleResidency.size(); ++s) {
            merged.idleResidency[s] += window.idleResidency[s];
            merged.wakeups[s] += window.wakeups[s];
        }
        merged.arrivals += window.arrivals;
        merged.completions += window.completions;
        merged.response.merge(window.response);
        merged.responseHistogram.merge(window.responseHistogram);
        merged.windowStart = std::min(merged.windowStart,
                                      window.windowStart);
        merged.windowEnd = std::max(merged.windowEnd, window.windowEnd);
    }
    return merged;
}

const PlatformModel &
ServerFarm::platform(std::size_t server) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::platform: server index out of range");
    return _servers[server].platform();
}

SimStats
ServerFarm::harvestWindow(std::size_t server)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::harvestWindow: server index out of range");
    return _servers[server].harvestWindow();
}

double
ServerFarm::backlog(std::size_t server, double t) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::backlog: server index out of range");
    return _servers[server].backlog(t);
}

double
ServerFarm::nextFreeTime() const
{
    double latest = 0.0;
    for (const ServerSim &server : _servers)
        latest = std::max(latest, server.nextFreeTime());
    return latest;
}

} // namespace sleepscale
