#include "farm/server_farm.hh"

#include <algorithm>
#include <limits>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace sleepscale {

namespace {

constexpr double never = std::numeric_limits<double>::infinity();

/** FarmView over the whole farm (the fault-free fast path): point
 * queries hit the servers directly, aggregate queries hit the
 * event-time indexes. */
class FullFarmView final : public FarmView
{
  public:
    FullFarmView(const std::vector<ServerSim> &servers,
                 const IdleSet &idle_set, BusyCalendar &calendar,
                 const std::vector<double> &next_free, double now)
        : _servers(servers), _idleSet(idle_set), _calendar(calendar),
          _nextFree(next_free), _now(now)
    {
    }

    std::size_t count() const override { return _servers.size(); }

    double backlog(std::size_t server) const override
    {
        return _servers[server].backlog(_now);
    }

    bool idle(std::size_t server) const override
    {
        return _servers[server].idleAt(_now);
    }

    std::size_t lowestIdle() const override
    {
        return _idleSet.empty() ? _servers.size() : _idleSet.lowest();
    }

    std::size_t leastBacklogBusy() const override
    {
        const std::size_t server = _calendar.earliestBusy(_nextFree);
        return server == BusyCalendar::none ? _servers.size() : server;
    }

  private:
    const std::vector<ServerSim> &_servers;
    const IdleSet &_idleSet;
    BusyCalendar &_calendar; ///< Non-const: lookups prune stale entries.
    const std::vector<double> &_nextFree;
    double _now;
};

} // namespace

std::string
toString(ServerLifecycle state)
{
    switch (state) {
      case ServerLifecycle::Up:
        return "up";
      case ServerLifecycle::Draining:
        return "draining";
      case ServerLifecycle::Down:
        return "down";
      case ServerLifecycle::Recovering:
        return "recovering";
    }
    panic("toString: unknown ServerLifecycle");
}

ServerFarm::ServerFarm(const PlatformModel &platform,
                       ServiceScaling scaling, const Policy &initial,
                       std::size_t size,
                       std::unique_ptr<Dispatcher> dispatcher)
    : _dispatcher(std::move(dispatcher))
{
    fatalIf(size == 0, "ServerFarm: need at least one server");
    fatalIf(!_dispatcher, "ServerFarm: dispatcher must not be null");
    _servers.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        _servers.emplace_back(platform, scaling, initial);
    _jobsRouted.assign(size, 0);
    _acceptFrom.assign(size, 0.0);
    _downSeconds.assign(size, 0.0);
    _downMark.assign(size, 0.0);
    _nextFree.assign(size, 0.0);
    _idleSet = IdleSet(size, /*full=*/true);
}

ServerFarm::ServerFarm(const std::vector<const PlatformModel *> &platforms,
                       ServiceScaling scaling, const Policy &initial,
                       std::unique_ptr<Dispatcher> dispatcher)
    : _dispatcher(std::move(dispatcher))
{
    fatalIf(platforms.empty(), "ServerFarm: need at least one server");
    fatalIf(!_dispatcher, "ServerFarm: dispatcher must not be null");
    _servers.reserve(platforms.size());
    for (const PlatformModel *platform : platforms) {
        fatalIf(platform == nullptr,
                "ServerFarm: per-server platform must not be null");
        _servers.emplace_back(*platform, scaling, initial);
    }
    _jobsRouted.assign(platforms.size(), 0);
    _acceptFrom.assign(platforms.size(), 0.0);
    _downSeconds.assign(platforms.size(), 0.0);
    _downMark.assign(platforms.size(), 0.0);
    _nextFree.assign(platforms.size(), 0.0);
    _idleSet = IdleSet(platforms.size(), /*full=*/true);
}

void
ServerFarm::setShardPool(ThreadPool *pool)
{
    _shardPool = pool;
}

void
ServerFarm::setRecordTail(bool record)
{
    for (ServerSim &server : _servers)
        server.setRecordTail(record);
}

template <typename Body>
void
ServerFarm::forEachServer(const Body &body)
{
    const std::size_t count = _servers.size();
    if (_shardPool == nullptr || _shardPool->size() <= 1 || count < 2) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    // Contiguous chunks keep per-lane work cache-friendly; a few chunks
    // per lane absorb load imbalance from the atomic index handout.
    const std::size_t chunks =
        std::min(count, _shardPool->size() * 4);
    const std::size_t stride = (count + chunks - 1) / chunks;
    _shardPool->parallelFor(chunks, [&](std::size_t chunk, std::size_t) {
        const std::size_t begin = chunk * stride;
        const std::size_t end = std::min(begin + stride, count);
        for (std::size_t i = begin; i < end; ++i)
            body(i);
    });
}

void
ServerFarm::processCalendarUpTo(double t)
{
    _calendar.drainDue(t, _nextFree,
                       [this](std::size_t server) {
                           _idleSet.insert(server);
                       });
}

void
ServerFarm::noteAdmission(std::size_t server)
{
    const double free = _servers[server].nextFreeTime();
    if (_nextFree[server] == free)
        return; // Zero-work admission: the busy period didn't extend.
    _idleSet.erase(server);
    _nextFree[server] = free;
    _calendar.push(free, server);
}

std::size_t
ServerFarm::offerJob(const Job &job)
{
    const std::size_t pick = tryOfferJob(job);
    fatalIf(pick == noServer,
            "ServerFarm::offerJob: no server is accepting work (use "
            "tryOfferJob() to back off and retry)");
    return pick;
}

std::size_t
ServerFarm::tryOfferJob(const Job &job)
{
    fatalIf(job.arrival < _lastArrival,
            "ServerFarm::offerJob: arrivals must be non-decreasing");
    _lastArrival = job.arrival;

    std::size_t pick = noServer;
    if (!_anyUnavailable) {
        // Fault-free fast path: O(log N) routing through the idle set
        // and busy calendar, with routing decisions (and dispatcher
        // RNG consumption) identical to the legacy full-scan path.
        processCalendarUpTo(job.arrival);
        FullFarmView view(_servers, _idleSet, _calendar, _nextFree,
                          job.arrival);
        pick = _dispatcher->route(job, view);
        fatalIf(pick >= _servers.size(),
                "ServerFarm: dispatcher chose a server out of range");
    } else {
        // Failover path: the dispatcher only sees the servers
        // accepting work at this instant, in index order, and its
        // choice maps back through the eligibility list.
        std::vector<std::size_t> eligible;
        eligible.reserve(_servers.size());
        for (std::size_t i = 0; i < _servers.size(); ++i) {
            if (accepting(i, job.arrival))
                eligible.push_back(i);
        }
        if (eligible.size() == _servers.size()) {
            // Everyone recovered: drop back to the fast path for good
            // (until the next failServer()).
            _anyUnavailable = false;
            return tryOfferJob(job);
        }
        if (eligible.empty())
            return noServer;
        std::vector<ServerSnapshot> view(eligible.size());
        for (std::size_t k = 0; k < eligible.size(); ++k) {
            view[k].backlog =
                _servers[eligible[k]].backlog(job.arrival);
            view[k].idle = _servers[eligible[k]].idleAt(job.arrival);
        }
        const std::size_t choice = _dispatcher->route(job, view);
        fatalIf(choice >= eligible.size(),
                "ServerFarm: dispatcher chose a server out of range");
        pick = eligible[choice];
    }
    _servers[pick].offerJob(job);
    noteAdmission(pick);
    ++_jobsRouted[pick];
    return pick;
}

void
ServerFarm::advanceTo(double t)
{
    processCalendarUpTo(t);
    forEachServer([&](std::size_t i) { _servers[i].advanceTo(t); });
    // Unavailability accrual is a no-op on a server that never crashed
    // (acceptFrom stays 0), so fault-free farms skip the loop outright.
    if (_everFailed && (_anyUnavailable || t > _lastAdvance)) {
        for (std::size_t i = 0; i < _servers.size(); ++i)
            accrueDown(i, t);
    }
    _lastAdvance = std::max(_lastAdvance, t);
}

void
ServerFarm::accrueDown(std::size_t server, double t)
{
    // Unavailability spans from the crash to the end of the recovery
    // delay; accrue the part of it that advancing to t newly covers.
    const double until = std::min(t, _acceptFrom[server]);
    if (until > _downMark[server]) {
        _downSeconds[server] += until - _downMark[server];
        _downMark[server] = until;
    }
}

void
ServerFarm::failServer(std::size_t server, double t)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::failServer: server index out of range");
    if (_acceptFrom[server] == never)
        return; // Already crashed; keep the original accounting mark.
    // A crash during a pending recovery window restarts the outage;
    // accrue the window covered so far first.
    accrueDown(server, t);
    _acceptFrom[server] = never;
    _downMark[server] = std::max(t, _downMark[server]);
    _anyUnavailable = true;
    _everFailed = true;
}

void
ServerFarm::restoreServer(std::size_t server, double t)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::restoreServer: server index out of range");
    if (_acceptFrom[server] != never)
        return; // Not crashed (Up or already recovering).
    accrueDown(server, t);
    _acceptFrom[server] = t + _recoverySeconds;
    _downMark[server] = std::max(_downMark[server], t);
}

void
ServerFarm::setRecoverySeconds(double seconds)
{
    fatalIf(!(seconds >= 0.0),
            "ServerFarm::setRecoverySeconds: delay must be >= 0");
    _recoverySeconds = seconds;
}

bool
ServerFarm::accepting(std::size_t server, double now) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::accepting: server index out of range");
    return now >= _acceptFrom[server];
}

std::size_t
ServerFarm::acceptingCount(double now) const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < _servers.size(); ++i)
        count += accepting(i, now) ? 1 : 0;
    return count;
}

ServerLifecycle
ServerFarm::lifecycle(std::size_t server, double now) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::lifecycle: server index out of range");
    if (now >= _acceptFrom[server])
        return ServerLifecycle::Up;
    if (_acceptFrom[server] == never) {
        return _servers[server].backlog(now) > 0.0
                   ? ServerLifecycle::Draining
                   : ServerLifecycle::Down;
    }
    return ServerLifecycle::Recovering;
}

double
ServerFarm::downSeconds(std::size_t server) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::downSeconds: server index out of range");
    return _downSeconds[server];
}

double
ServerFarm::totalDownSeconds() const
{
    double total = 0.0;
    for (double seconds : _downSeconds)
        total += seconds;
    return total;
}

void
ServerFarm::setPolicy(const Policy &policy, double t)
{
    for (ServerSim &server : _servers)
        server.setPolicy(policy, t);
}

void
ServerFarm::setPolicy(std::size_t server, const Policy &policy, double t)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::setPolicy: server index out of range");
    _servers[server].setPolicy(policy, t);
}

const Policy &
ServerFarm::policy(std::size_t server) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::policy: server index out of range");
    return _servers[server].policy();
}

SimStats
ServerFarm::harvestWindow()
{
    return mergeWindows(harvestWindows());
}

std::vector<SimStats>
ServerFarm::harvestWindows()
{
    std::vector<SimStats> windows(_servers.size());
    // Each server's harvest touches only its own state; results are
    // stored by index and merged in index order, so sharding cannot
    // perturb the totals.
    forEachServer([&](std::size_t i) {
        windows[i] = _servers[i].harvestWindow();
    });
    return windows;
}

SimStats
ServerFarm::mergeWindows(const std::vector<SimStats> &windows)
{
    fatalIf(windows.empty(),
            "ServerFarm::mergeWindows: need at least one window");
    SimStats merged = windows.front();
    for (std::size_t i = 1; i < windows.size(); ++i) {
        const SimStats &window = windows[i];
        // Servers share the wall clock: add energies/residencies and
        // pool responses without extending the window span.
        merged.energy += window.energy;
        merged.busyTime += window.busyTime;
        merged.wakeTime += window.wakeTime;
        for (std::size_t s = 0; s < merged.idleResidency.size(); ++s) {
            merged.idleResidency[s] += window.idleResidency[s];
            merged.wakeups[s] += window.wakeups[s];
        }
        merged.arrivals += window.arrivals;
        merged.completions += window.completions;
        merged.response.merge(window.response);
        merged.responseHistogram.merge(window.responseHistogram);
        merged.windowStart = std::min(merged.windowStart,
                                      window.windowStart);
        merged.windowEnd = std::max(merged.windowEnd, window.windowEnd);
    }
    return merged;
}

const PlatformModel &
ServerFarm::platform(std::size_t server) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::platform: server index out of range");
    return _servers[server].platform();
}

SimStats
ServerFarm::harvestWindow(std::size_t server)
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::harvestWindow: server index out of range");
    return _servers[server].harvestWindow();
}

double
ServerFarm::backlog(std::size_t server, double t) const
{
    fatalIf(server >= _servers.size(),
            "ServerFarm::backlog: server index out of range");
    return _servers[server].backlog(t);
}

double
ServerFarm::nextFreeTime() const
{
    double latest = 0.0;
    for (const ServerSim &server : _servers)
        latest = std::max(latest, server.nextFreeTime());
    return latest;
}

} // namespace sleepscale
