/**
 * @file
 * Epoch-driven SleepScale control for a server farm (paper Section 7).
 *
 * The paper conjectures that SleepScale scales out by running on each
 * server independently. With a symmetric dispatcher the per-server
 * arrival processes are statistically identical, so this runtime makes
 * one decision per epoch from a *thinned* aggregate job log (keeping
 * every farm-size-th event reproduces a single server's view under
 * random splitting) and applies it farm-wide — equivalent to N
 * independent SleepScale instances in the symmetric case while running
 * the queueing characterization once.
 */

#ifndef SLEEPSCALE_FARM_FARM_RUNTIME_HH
#define SLEEPSCALE_FARM_FARM_RUNTIME_HH

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "farm/server_farm.hh"
#include "workload/job_source.hh"
#include "workload/utilization_trace.hh"

namespace sleepscale {

/** Farm-level runtime configuration. */
struct FarmRuntimeConfig
{
    /** Number of back-end servers. */
    std::size_t farmSize = 4;

    /** Dispatcher name: "random", "round-robin", "JSQ", "packing". */
    std::string dispatcher = "random";

    /** Spill threshold for the packing dispatcher, seconds. */
    double packingSpillBacklog = 1.0;

    /** Seed for stochastic dispatchers. */
    std::uint64_t dispatchSeed = 1;

    /** Per-server policy-management knobs (epoch length, α, ρ_b, QoS
     * metric, candidate space, log caps). */
    RuntimeConfig perServer;
};

/** Aggregate outcome of a farm run. */
struct FarmRuntimeResult
{
    /** Farm-wide merged statistics (watts are farm watts). */
    SimStats total;

    /** Epoch reports (policy decisions are farm-wide). */
    std::vector<EpochReport> epochs;

    /** Jobs routed to each server. */
    std::vector<std::uint64_t> jobsPerServer;

    QosConstraint qos = QosConstraint::meanBudget(1.0);

    /** Whole-run mean response, seconds. */
    double meanResponse() const { return total.meanResponse(); }

    /** Whole-run farm power, watts. */
    double avgPower() const { return total.avgPower(); }

    /** Whether the pooled response statistic met the budget. */
    bool withinBudget() const { return qos.satisfiedBy(total); }
};

/** Runs SleepScale over a dispatched farm. */
class FarmRuntime
{
  public:
    /**
     * @param platform Power model shared by the servers (not owned).
     * @param spec Workload characterization.
     * @param config Farm and per-server knobs.
     */
    FarmRuntime(const PlatformModel &platform, const WorkloadSpec &spec,
                FarmRuntimeConfig config);

    /**
     * Run a streaming aggregate job source through the farm.
     *
     * Jobs are pulled epoch by epoch with one-job lookahead; the only
     * job buffers are the thinned decision log (capped at evalLogCap)
     * and the lookahead itself, so a million-job day streams in
     * O(history) memory with no full-trace materialization.
     *
     * @param source Aggregate arrivals (consumed); the trace's
     *             utilization is the *per-server* offered load (total
     *             demand divided by the farm size).
     * @param trace Per-minute per-server utilization targets.
     * @param predictor Observes per-server offered load each minute.
     */
    FarmRuntimeResult run(JobSource &source,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const;

    /**
     * Run a materialized aggregate job list — a thin adapter that
     * streams `jobs` through the JobSource overload; results are
     * identical.
     */
    FarmRuntimeResult run(const std::vector<Job> &jobs,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const;

    /** The QoS constraint derived from the configuration. */
    const QosConstraint &qos() const { return _qos; }

    /** The per-epoch policy manager (absent for fixed-policy
     * configurations). Persistent across epochs and runs so the
     * evaluation engine's plan cache and arenas are reused. */
    const PolicyManager *manager() const { return _manager.get(); }

  private:
    const PlatformModel &_platform;
    WorkloadSpec _spec;
    FarmRuntimeConfig _config;
    QosConstraint _qos;

    /** Persistent manager + evaluation engine; its arenas mutate during
     * selection, so concurrent run() calls on one instance are not
     * safe. */
    std::unique_ptr<PolicyManager> _manager;
};

/**
 * Streaming aggregate trace-driven source for a farm: the trace is the
 * per-server load, so the farm sees farm-size times the arrival rate
 * with the same service distribution. Equivalent to
 * TraceDrivenSource(spec, trace, seed, farm_size).
 */
std::unique_ptr<JobSource> makeFarmSource(const WorkloadSpec &spec,
                                          const UtilizationTrace &trace,
                                          std::size_t farm_size,
                                          std::uint64_t seed);

/**
 * Materialized adapter over makeFarmSource() — drains the aggregate
 * stream into a vector for callers that need the whole list.
 */
std::vector<Job> generateFarmJobs(Rng &rng, const WorkloadSpec &spec,
                                  const UtilizationTrace &trace,
                                  std::size_t farm_size);

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_FARM_RUNTIME_HH
