/**
 * @file
 * Epoch-driven SleepScale control for a server farm (paper Section 7).
 *
 * The paper conjectures that SleepScale scales out by running on each
 * server independently. This runtime implements both readings of that
 * conjecture as named control modes:
 *
 *  - "farm-wide": one decision per epoch from a *thinned* aggregate job
 *    log — the jobs the dispatcher routes to server 0, the literal
 *    arrival process of one representative back-end — applied to every
 *    server. Valid for
 *    symmetric dispatchers over identical servers, and cheap: the
 *    queueing characterization runs once per epoch.
 *  - "per-server": every back-end owns its own PolicyManager (whose
 *    eval-engine plan cache and arenas persist across epochs) fed by
 *    the jobs the dispatcher actually routed to it. Decisions fan out
 *    across a thread pool each epoch and are applied in deterministic
 *    server-index order, so any pool width reproduces the serial run.
 *    This is the general mode: it supports heterogeneous platform
 *    mixes (big/little farms) and skewed dispatchers, where per-server
 *    decisions legitimately diverge.
 *  - "distributed": per-server topology with a zero-communication
 *    decision rule (farm/rate_scaler.hh, after Rutten et al.,
 *    arXiv:2306.02215) — each back-end provisions its frequency from
 *    a local offered-load estimate, with no job logs and no shared
 *    predictor input. The cheapest mode per epoch and the only one
 *    with no farm-global state at all.
 *
 * In the symmetric homogeneous case the two modes make statistically
 * identical decisions (pinned by tests/farm_per_server_test.cc), which
 * is the paper's Section 7 scale-out argument made executable.
 */

#ifndef SLEEPSCALE_FARM_FARM_RUNTIME_HH
#define SLEEPSCALE_FARM_FARM_RUNTIME_HH

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "farm/server_farm.hh"
#include "fault/fault_source.hh"
#include "workload/job_source.hh"
#include "workload/utilization_trace.hh"

namespace sleepscale {

/** Farm-level runtime configuration. */
struct FarmRuntimeConfig
{
    /** Number of back-end servers. */
    std::size_t farmSize = 4;

    /** Dispatcher name: "random", "round-robin", "JSQ", "packing". */
    std::string dispatcher = "random";

    /** Spill threshold for the packing dispatcher, seconds. */
    double packingSpillBacklog = 1.0;

    /** Seed for stochastic dispatchers. */
    std::uint64_t dispatchSeed = 1;

    /** Control mode: "farm-wide" (one thinned-log decision applied
     * everywhere), "per-server" (autonomous per-server decisions from
     * each server's own dispatched log), or "distributed"
     * (zero-communication local rate scaling, farm/rate_scaler.hh:
     * each server tracks its own offered load and scales frequency
     * against the ρ_b target, ignoring the shared predictor). */
    std::string control = "farm-wide";

    /** Per-server platform names resolved against platformRegistry().
     * Empty means homogeneous (every server uses the platform passed to
     * the FarmRuntime constructor); otherwise the length must equal
     * farmSize and heterogeneous mixes require per-server control. */
    std::vector<std::string> platforms;

    /** Fan-out width of the per-server epoch decision loop: 1 decides
     * serially, N > 1 uses an N-lane pool, 0 picks one lane per server
     * up to the hardware concurrency. Any width yields bit-identical
     * decisions: each server's decision lands in a server-indexed slot
     * and is applied in server-index order after the fan-out joins
     * (docs/CONCURRENCY.md, invariant 1; this suite runs under TSan in
     * CI via the "concurrency" ctest label). */
    std::size_t decisionThreads = 0;

    /**
     * Shard width of the farm's per-server accounting loops (the
     * per-minute advance and the per-epoch harvest): 1 runs serially
     * (no pool), N > 1 fans the servers out over an N-lane pool in
     * contiguous index ranges, 0 sizes the pool automatically (one
     * lane per 1024 servers, capped at the hardware concurrency).
     * Per-server state is independent and windows merge in index
     * order, so every width is bit-identical — pinned by
     * tests/farm_scale_test.cc at widths 1, 2, and 8.
     */
    std::size_t shards = 1;

    /** Record per-completion response-tail histograms. Farm QoS on
     * mean response does not need them, and at 10k+ servers the
     * per-epoch histogram merges dominate the run, so scale runs turn
     * this off; percentile readouts then report 0. */
    bool tailHistograms = true;

    /** Populate FarmServerReport::epochs under per-server control.
     * On by default; scale runs turn it off so memory stays O(farm),
     * not O(farm x epochs). */
    bool serverEpochReports = true;

    /** Per-server policy-management knobs (epoch length, α, ρ_b, QoS
     * metric, candidate space, log caps). */
    RuntimeConfig perServer;

    // ------------------------------------------ fault injection
    // (docs/FAULTS.md; all ignored when faults == "none").

    /** Fault-source family ("none", "mtbf", "correlated", "scripted")
     * resolved against faultSourceRegistry(). "none" reproduces the
     * fault-free runtime bit-for-bit. */
    std::string faults = "none";

    /** Mean time between failures, seconds ("mtbf"/"correlated"). */
    double mtbf = 4.0 * 3600.0;

    /** Mean time to recovery, seconds ("mtbf"/"correlated"). */
    double mttr = 300.0;

    /** Servers per correlated outage ("correlated" only). */
    std::size_t correlatedGroup = 2;

    /** Scripted crash/recovery schedule ("scripted" only). */
    std::vector<FaultEvent> faultScript;

    /** Seed of the stochastic fault schedules (derive it from the
     * scenario seed with mixSeed so replications decorrelate). */
    std::uint64_t faultSeed = 1;

    /** Initial failover backoff, seconds of sim time (> 0): a job that
     * finds every server down is retried after retryBackoff, then
     * 2x, 4x, ... capped at retryBackoffCap. */
    double retryBackoff = 1.0;

    /** Ceiling of the exponential failover backoff, seconds. */
    double retryBackoffCap = 60.0;

    /** A job still undispatched this long after its original arrival
     * is dropped and recorded as an SLO loss, seconds. */
    double dropTimeout = 300.0;

    /** Extra delay between a recovery event and the server accepting
     * work again, seconds (the Recovering lifecycle stage). */
    double recoverySeconds = 0.0;

    /** Safe fixed policy controllers fall back to in degraded mode
     * (default: full frequency, no sleep descent). */
    Policy degradedPolicy;
};

/** Availability-plane counters of a fault-injected farm run. All
 * fields are cumulative from the start of the run. */
struct FarmFaultStats
{
    /** Jobs the source offered to the farm. */
    std::uint64_t offered = 0;

    /** Jobs admitted to some server (first try or via failover). */
    std::uint64_t admitted = 0;

    /** Completions across the farm. */
    std::uint64_t completed = 0;

    /** Jobs dropped after dropTimeout — the recorded SLO losses. */
    std::uint64_t dropped = 0;

    /** Failover re-dispatch attempts (every retry counts). */
    std::uint64_t retries = 0;

    /** Jobs in flight: admitted-but-not-completed plus the jobs
     * waiting in the failover retry queue (snapshot, not cumulative).
     * Conservation (pinned by the fault fuzzer): at every epoch close,
     * offered == completed + dropped + inFlight. */
    std::uint64_t inFlight = 0;

    /** Seconds of server unavailability summed across the farm. */
    double downSeconds = 0.0;

    /** Seconds of degraded-mode (safe fixed policy) operation summed
     * across the farm's controllers. */
    double degradedSeconds = 0.0;

    /** Server-epochs that ran the degraded fallback policy. */
    std::uint64_t degradedEpochs = 0;

    /** Sim seconds elapsed when this snapshot was taken. */
    double elapsedSeconds = 0.0;

    /** Fraction of server-seconds the farm was available over the
     * elapsed span (1 when no time has elapsed). */
    double availability(std::size_t farm_size) const;

    /** Fraction of offered jobs that completed (1 when nothing was
     * offered). */
    double goodput() const;
};

/** One back-end's slice of a farm run (always populated; per-epoch
 * reports are filled under per-server control, where each server
 * decides for itself). */
struct FarmServerReport
{
    /** Server index in [0, farmSize). */
    std::size_t server = 0;

    /** Name of the platform model this server ran. */
    std::string platform;

    /** This server's whole-run statistics (watts are server watts). */
    SimStats total;

    /** This server's per-epoch decisions and outcomes ("per-server"
     * control only; empty under "farm-wide", whose single decision
     * stream lives in FarmRuntimeResult::epochs). */
    std::vector<EpochReport> epochs;

    /** Jobs the dispatcher routed to this server. */
    std::uint64_t jobsRouted = 0;

    /** Whether this server's pooled response statistic met the farm's
     * QoS budget. */
    bool withinBudget = false;

    /** Whole-run mean response of this server's jobs, seconds. */
    double meanResponse() const { return total.meanResponse(); }

    /** Whole-run average power of this server, watts. */
    double avgPower() const { return total.avgPower(); }
};

/** Aggregate outcome of a farm run. */
struct FarmRuntimeResult
{
    /** Farm-wide merged statistics (watts are farm watts). */
    SimStats total;

    /** Farm-level epoch reports. Under "farm-wide" control the policy
     * fields are the farm-wide decisions; under "per-server" control
     * they carry server 0's policy as a representative (the full
     * per-server decision streams are in servers[i].epochs). */
    std::vector<EpochReport> epochs;

    /** Per-server breakdown, one entry per back-end in index order. */
    std::vector<FarmServerReport> servers;

    /** Control mode that produced this result. */
    std::string control = "farm-wide";

    /** Jobs routed to each server. */
    std::vector<std::uint64_t> jobsPerServer;

    /** The QoS constraint the run was managed against. */
    QosConstraint qos = QosConstraint::meanBudget(1.0);

    /** Whole-run availability-plane counters (all-zero except
     * completed/offered/admitted mirrors for fault-free runs). */
    FarmFaultStats faults;

    /** Cumulative fault counters snapshotted at each epoch close
     * (index-aligned with `epochs`; the fault fuzzer asserts the
     * conservation identity on every entry). */
    std::vector<FarmFaultStats> epochFaults;

    /** Whole-run mean response, seconds. */
    double meanResponse() const { return total.meanResponse(); }

    /** Whole-run farm power, watts. */
    double avgPower() const { return total.avgPower(); }

    /** Whether the pooled response statistic met the budget. */
    bool withinBudget() const { return qos.satisfiedBy(total); }
};

/** Runs SleepScale over a dispatched farm. */
class FarmRuntime
{
  public:
    /**
     * @param platform Power model shared by the servers (not owned)
     *        when config.platforms is empty; otherwise only the
     *        fallback for unspecified entries.
     * @param spec Workload characterization.
     * @param config Farm and per-server knobs; validated up front
     *        (farm size, dispatcher and platform names, control mode,
     *        platform-list length) so misconfigurations fail at the
     *        construction site with actionable messages.
     */
    FarmRuntime(const PlatformModel &platform, const WorkloadSpec &spec,
                FarmRuntimeConfig config);

    /**
     * Run a streaming aggregate job source through the farm.
     *
     * Jobs are pulled epoch by epoch with one-job lookahead; the only
     * job buffers are the decision logs (the thinned farm-wide log, or
     * one log per server under per-server control, each capped at
     * evalLogCap) and the lookahead itself, so a million-job day
     * streams in O(history) memory with no full-trace materialization.
     *
     * @param source Aggregate arrivals (consumed); the trace's
     *             utilization is the *per-server* offered load (total
     *             demand divided by the farm size).
     * @param trace Per-minute per-server utilization targets.
     * @param predictor Observes per-server offered load each minute;
     *             under per-server control its forecast is the shared
     *             per-server load target each autonomous controller
     *             rescales its own log to.
     */
    FarmRuntimeResult run(JobSource &source,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const;

    /**
     * Run a materialized aggregate job list — a thin adapter that
     * streams `jobs` through the JobSource overload; results are
     * identical.
     */
    FarmRuntimeResult run(const std::vector<Job> &jobs,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const;

    /** The QoS constraint derived from the configuration. */
    const QosConstraint &qos() const { return _qos; }

    /** The farm-wide search policy manager (null for fixed-policy,
     * per-server, or controller configurations). Persistent across
     * epochs and runs so the evaluation engine's plan cache and
     * arenas are reused. */
    const PolicyManager *manager() const { return _searchManager; }

    /** The farm-wide per-epoch decider — search manager or feedback
     * controller (null for fixed-policy or per-server
     * configurations). */
    const EpochDecider *decider() const { return _manager.get(); }

    /** One server's autonomous search policy manager (per-server
     * search control only; fatal() otherwise or when the index is out
     * of range). Persistent across epochs and runs, so each server's
     * eval-engine cache survives the whole farm lifetime. */
    const PolicyManager &serverManager(std::size_t server) const;

    /** One server's autonomous per-epoch decider (per-server control
     * only; fatal() otherwise or when the index is out of range). */
    const EpochDecider &serverDecider(std::size_t server) const;

    /** Resolved power model of one server. */
    const PlatformModel &serverPlatform(std::size_t server) const;

  private:
    const PlatformModel &_platform;
    WorkloadSpec _spec;
    FarmRuntimeConfig _config;
    QosConstraint _qos;

    /** Platform models resolved from config.platforms (empty for a
     * homogeneous farm on the constructor platform). Sized once in the
     * constructor — the per-server managers hold references into it. */
    std::vector<PlatformModel> _resolvedPlatforms;

    /** One non-owning pointer per server into _resolvedPlatforms (or
     * to the constructor platform), fixed at construction. */
    std::vector<const PlatformModel *> _serverPlatforms;

    /** Farm-wide persistent decider (search manager + evaluation
     * engine, or feedback controller); its state mutates during
     * decisions, so concurrent run() calls on one instance are not
     * safe. */
    std::unique_ptr<EpochDecider> _manager;

    /** Per-server persistent deciders (per-server control; one per
     * back-end so each keeps its own eval-engine cache or controller
     * state — autonomous per-server control is the point of the O(1)
     * path). The decision pool that fans decisions out over them is
     * created per run(), so an idle runtime holds no worker threads. */
    std::vector<std::unique_ptr<EpochDecider>> _managers;

    /** _manager, when it is the search path (see manager()). */
    PolicyManager *_searchManager = nullptr;

    /** _managers entries, when they are the search path (see
     * serverManager()). */
    std::vector<PolicyManager *> _searchManagers;

    /** Whether config.control selects autonomous per-server control. */
    bool perServerControl() const;

    FarmRuntimeResult runFarmWide(JobSource &source,
                                  const UtilizationTrace &trace,
                                  UtilizationPredictor &predictor) const;

    FarmRuntimeResult runPerServer(JobSource &source,
                                   const UtilizationTrace &trace,
                                   UtilizationPredictor &predictor) const;
};

/**
 * Delay before failover retry attempt `attempts` (>= 1): the capped
 * exponential backoff min(backoff * 2^(attempts-1), cap), computed in
 * saturating form. The doubling is exact binary scaling (no pow()
 * rounding), and once 2^(attempts-1) would overflow — or the product
 * merely exceeds the cap — the result saturates at the cap instead of
 * wrapping through infinity. In particular a sub-nanosecond backoff
 * still climbs all the way to the cap rather than stalling at
 * backoff * 2^30 forever (the pre-saturation clamp did exactly that,
 * which made an always-down farm retry-spin in near-zero sim time).
 *
 * @param backoff Initial backoff, seconds (> 0, finite).
 * @param attempts Failed dispatch attempts so far (>= 1).
 * @param cap Backoff ceiling, seconds (>= backoff).
 */
double failoverBackoffDelay(double backoff, unsigned attempts,
                            double cap);

/**
 * Streaming aggregate trace-driven source for a farm: the trace is the
 * per-server load, so the farm sees farm-size times the arrival rate
 * with the same service distribution. Equivalent to
 * TraceDrivenSource(spec, trace, seed, farm_size).
 */
std::unique_ptr<JobSource> makeFarmSource(const WorkloadSpec &spec,
                                          const UtilizationTrace &trace,
                                          std::size_t farm_size,
                                          std::uint64_t seed);

/**
 * Materialized adapter over makeFarmSource() — drains the aggregate
 * stream into a vector for callers that need the whole list.
 */
std::vector<Job> generateFarmJobs(Rng &rng, const WorkloadSpec &spec,
                                  const UtilizationTrace &trace,
                                  std::size_t farm_size);

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_FARM_RUNTIME_HH
