#include "farm/dispatcher.hh"

#include <limits>

#include "util/error.hh"

namespace sleepscale {

namespace {

void
requireServers(const std::vector<ServerSnapshot> &servers)
{
    fatalIf(servers.empty(), "Dispatcher: farm has no servers");
}

void
requireServers(const FarmView &farm)
{
    fatalIf(farm.count() == 0, "Dispatcher: farm has no servers");
}

} // namespace

std::size_t
Dispatcher::route(const Job &job, const FarmView &farm)
{
    // Compatibility shim for dispatchers that predate FarmView: build
    // the full snapshot vector and defer to the legacy overload. The
    // built-ins override this with O(log N) routing.
    std::vector<ServerSnapshot> view(farm.count());
    for (std::size_t i = 0; i < view.size(); ++i) {
        view[i].backlog = farm.backlog(i);
        view[i].idle = farm.idle(i);
    }
    return route(job, view);
}

RandomDispatcher::RandomDispatcher(std::uint64_t seed)
    : _rng(seed)
{
}

std::size_t
RandomDispatcher::route(const Job &job,
                        const std::vector<ServerSnapshot> &servers)
{
    (void)job;
    requireServers(servers);
    return _rng.uniformInt(servers.size());
}

std::size_t
RandomDispatcher::route(const Job &job, const FarmView &farm)
{
    (void)job;
    requireServers(farm);
    // Same single draw as the snapshot overload, so RNG consumption —
    // and therefore every downstream decision — is path-independent.
    return _rng.uniformInt(farm.count());
}

std::size_t
RoundRobinDispatcher::route(const Job &job,
                            const std::vector<ServerSnapshot> &servers)
{
    (void)job;
    requireServers(servers);
    const std::size_t pick = _next % servers.size();
    ++_next;
    return pick;
}

std::size_t
RoundRobinDispatcher::route(const Job &job, const FarmView &farm)
{
    (void)job;
    requireServers(farm);
    const std::size_t pick = _next % farm.count();
    ++_next;
    return pick;
}

std::size_t
JsqDispatcher::route(const Job &job,
                     const std::vector<ServerSnapshot> &servers)
{
    (void)job;
    requireServers(servers);
    std::size_t best = 0;
    double best_backlog = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (servers[i].backlog < best_backlog) {
            best_backlog = servers[i].backlog;
            best = i;
        }
    }
    return best;
}

std::size_t
JsqDispatcher::route(const Job &job, const FarmView &farm)
{
    (void)job;
    requireServers(farm);
    // An idle server has backlog exactly 0.0 and every busy server's
    // backlog is > 0, so the legacy strict-< scan always lands on the
    // lowest-index idle server when one exists, and otherwise on the
    // busy server whose queue empties first.
    const std::size_t idle = farm.lowestIdle();
    if (idle < farm.count())
        return idle;
    const std::size_t busy = farm.leastBacklogBusy();
    return busy < farm.count() ? busy : 0;
}

PackingDispatcher::PackingDispatcher(double spill_backlog)
    : _spillBacklog(spill_backlog)
{
    fatalIf(spill_backlog <= 0.0,
            "PackingDispatcher: spill backlog must be positive");
}

std::size_t
PackingDispatcher::route(const Job &job,
                         const std::vector<ServerSnapshot> &servers)
{
    (void)job;
    requireServers(servers);

    // Least-backlogged busy server below the spill threshold...
    std::size_t best_busy = servers.size();
    double best_backlog = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (!servers[i].idle && servers[i].backlog < best_backlog) {
            best_backlog = servers[i].backlog;
            best_busy = i;
        }
    }
    if (best_busy < servers.size() && best_backlog < _spillBacklog)
        return best_busy;

    // ...otherwise wake the first idle server...
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (servers[i].idle)
            return i;
    }
    // ...and if none is idle, fall back to JSQ.
    return best_busy < servers.size() ? best_busy : 0;
}

std::size_t
PackingDispatcher::route(const Job &job, const FarmView &farm)
{
    (void)job;
    requireServers(farm);
    // Mirrors the snapshot overload: least-backlogged busy server below
    // the spill threshold, else the lowest-index idle server, else the
    // least-backlogged busy server regardless of threshold.
    const std::size_t busy = farm.leastBacklogBusy();
    if (busy < farm.count() && farm.backlog(busy) < _spillBacklog)
        return busy;
    const std::size_t idle = farm.lowestIdle();
    if (idle < farm.count())
        return idle;
    return busy < farm.count() ? busy : 0;
}

std::unique_ptr<Dispatcher>
makeDispatcher(const std::string &name, std::uint64_t seed,
               double spill_backlog)
{
    DispatcherContext ctx;
    ctx.seed = seed;
    ctx.spillBacklog = spill_backlog;
    return dispatcherRegistry().get(name)(ctx);
}

Registry<DispatcherFactory> &
dispatcherRegistry()
{
    static Registry<DispatcherFactory> registry = [] {
        Registry<DispatcherFactory> r("dispatcher");
        r.add("random", [](const DispatcherContext &ctx) {
            return std::make_unique<RandomDispatcher>(ctx.seed);
        });
        r.add("round-robin", [](const DispatcherContext &) {
            return std::make_unique<RoundRobinDispatcher>();
        });
        r.add("JSQ", [](const DispatcherContext &) {
            return std::make_unique<JsqDispatcher>();
        });
        r.add("packing", [](const DispatcherContext &ctx) {
            return std::make_unique<PackingDispatcher>(ctx.spillBacklog);
        });
        return r;
    }();
    return registry;
}

} // namespace sleepscale
