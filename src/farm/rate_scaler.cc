#include "farm/rate_scaler.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace sleepscale {

DistributedRateScaler::DistributedRateScaler(
    std::vector<double> frequencies, ServiceScaling scaling,
    const Policy &initial, RateScalerOptions options)
    : _frequencies(std::move(frequencies)), _scaling(scaling),
      _initial(initial), _options(options)
{
    fatalIf(_frequencies.empty(),
            "DistributedRateScaler: need at least one frequency");
    for (double f : _frequencies)
        fatalIf(f <= 0.0 || f > 1.0,
                "DistributedRateScaler: frequencies must be in (0, 1]");
    fatalIf(_options.targetUtilization <= 0.0 ||
                _options.targetUtilization > 1.0,
            "DistributedRateScaler: target utilization must be in "
            "(0, 1]");
    fatalIf(_options.gainFloor < 0.0 || _options.gainFloor > 1.0 ||
                !std::isfinite(_options.gainFloor),
            "DistributedRateScaler: gain floor must be in [0, 1]");
    std::sort(_frequencies.begin(), _frequencies.end());
}

PolicyDecision
DistributedRateScaler::decide(const EpochObservation &observation,
                              const std::vector<Job> &log)
{
    (void)log;

    // Robbins–Monro update of the local offered-load estimate. The
    // measured utilization is demand-based, so an idle epoch is a
    // legitimate observation of zero load, not a missing one.
    const double observed =
        std::clamp(observation.measuredUtilization, 0.0, 1.0);
    ++_samples;
    const double gain =
        std::max(1.0 / static_cast<double>(_samples),
                 _options.gainFloor);
    _lambda += gain * (observed - _lambda);

    // Slowest frequency that keeps the scaled utilization under the
    // target; when even full speed cannot, run full speed and report
    // the decision infeasible.
    PolicyDecision decision;
    decision.policy = _initial;
    decision.policy.frequency = _frequencies.back();
    for (double f : _frequencies) {
        ++decision.evaluated;
        const double utilization = _lambda * _scaling.factor(f);
        if (utilization <= _options.targetUtilization) {
            decision.policy.frequency = f;
            decision.feasible = true;
            decision.predictedMetric =
                utilization / _options.targetUtilization;
            break;
        }
    }
    return decision;
}

GuardedDecision
DistributedRateScaler::decideGuarded(
    const EpochObservation &observation, const std::vector<Job> &log,
    const Policy &fallback)
{
    GuardedDecision guarded;
    if (observation.faultStarved) {
        // The server spent the window down: its local estimate saw no
        // arrivals that were really offered, so steering on it would
        // under-provision the recovery burst. Same contract as the
        // other deciders: run the safe fixed policy for the epoch.
        guarded.decision.policy = fallback;
        guarded.decision.feasible = false;
        guarded.degraded = true;
        return guarded;
    }
    guarded.decision = decide(observation, log);
    if (!guarded.decision.feasible) {
        guarded.decision.policy = fallback;
        guarded.degraded = true;
    }
    return guarded;
}

void
DistributedRateScaler::reset()
{
    _lambda = 0.0;
    _samples = 0;
}

} // namespace sleepscale
