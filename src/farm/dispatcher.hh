/**
 * @file
 * Job dispatchers for multi-server farms (paper Section 7 future work).
 *
 * The paper conjectures SleepScale scales out by running per server,
 * with a front-end spreading jobs across the farm. The dispatcher
 * decides which server each arrival joins; the choice shapes both the
 * response-time distribution and — because it determines idle-period
 * lengths — how much sleep-state headroom each server sees.
 */

#ifndef SLEEPSCALE_FARM_DISPATCHER_HH
#define SLEEPSCALE_FARM_DISPATCHER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/registry.hh"
#include "util/rng.hh"
#include "workload/job.hh"

namespace sleepscale {

/** Read-only per-server signals a dispatcher may consult. */
struct ServerSnapshot
{
    double backlog = 0.0;   ///< Committed seconds of work remaining.
    bool idle = true;       ///< Whether the queue is currently empty.
};

/**
 * Indexed view of the farm at one arrival instant.
 *
 * Unlike the materialized ServerSnapshot vector, a FarmView answers
 * point queries lazily and exposes the two aggregate lookups the
 * built-in dispatchers need — lowest idle server, least-backlogged
 * busy server — in O(log N) against the farm's event-time indexes
 * (farm/farm_calendar.hh), so routing never scans the whole farm.
 * Both aggregates break ties to the lowest server index, matching the
 * legacy full-scan dispatchers bit for bit.
 */
class FarmView
{
  public:
    virtual ~FarmView() = default;

    /** Number of servers in the view. */
    virtual std::size_t count() const = 0;

    /** Committed seconds of work remaining on one server. */
    virtual double backlog(std::size_t server) const = 0;

    /** Whether one server's queue is currently empty. */
    virtual bool idle(std::size_t server) const = 0;

    /** Lowest idle server index, or count() when none is idle. */
    virtual std::size_t lowestIdle() const = 0;

    /** Busy server whose queue empties first (lowest index on ties),
     * or count() when no server is busy. */
    virtual std::size_t leastBacklogBusy() const = 0;
};

/** Strategy interface: pick a server index for each arrival. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    /**
     * Route one job.
     *
     * @param job The arriving job.
     * @param servers Current per-server state, one entry per server.
     * @return Index of the chosen server (< servers.size()).
     */
    virtual std::size_t route(const Job &job,
                              const std::vector<ServerSnapshot> &servers)
        = 0;

    /**
     * Route one job against an indexed farm view (the fault-free fast
     * path). The base implementation materializes a ServerSnapshot
     * vector and defers to the legacy overload, so third-party
     * dispatchers registered against dispatcherRegistry() keep working
     * unchanged; the built-ins override this with O(log N) routing.
     *
     * @param job The arriving job.
     * @param farm Indexed view of the farm at the arrival instant.
     * @return Index of the chosen server (< farm.count()).
     */
    virtual std::size_t route(const Job &job, const FarmView &farm);

    /** Name for reports. */
    virtual std::string name() const = 0;
};

/** Uniformly random routing (splits a Poisson stream into thinner
 * Poisson streams; the baseline in the server-farm literature). */
class RandomDispatcher final : public Dispatcher
{
  public:
    /** @param seed Seed of the routing RNG. */
    explicit RandomDispatcher(std::uint64_t seed = 1);
    std::size_t route(const Job &job,
                      const std::vector<ServerSnapshot> &servers)
        override;
    std::size_t route(const Job &job, const FarmView &farm) override;
    std::string name() const override { return "random"; }

  private:
    Rng _rng;
};

/** Cyclic routing: deterministic, evens out arrival counts. */
class RoundRobinDispatcher final : public Dispatcher
{
  public:
    std::size_t route(const Job &job,
                      const std::vector<ServerSnapshot> &servers)
        override;
    std::size_t route(const Job &job, const FarmView &farm) override;
    std::string name() const override { return "round-robin"; }

  private:
    std::size_t _next = 0;
};

/** Join-shortest-queue by committed backlog (ties -> lowest index). */
class JsqDispatcher final : public Dispatcher
{
  public:
    std::size_t route(const Job &job,
                      const std::vector<ServerSnapshot> &servers)
        override;
    std::size_t route(const Job &job, const FarmView &farm) override;
    std::string name() const override { return "JSQ"; }
};

/**
 * Sleep-aware packing: prefer the least-backlogged *busy* server so
 * idle servers stay asleep; spill to an idle server only when every
 * busy server's backlog exceeds a threshold. Concentrating work is the
 * classic consolidation play for sleep-state effectiveness.
 */
class PackingDispatcher final : public Dispatcher
{
  public:
    /**
     * @param spill_backlog Backlog (seconds) beyond which an idle
     *        server is woken instead of queueing deeper.
     */
    explicit PackingDispatcher(double spill_backlog);
    std::size_t route(const Job &job,
                      const std::vector<ServerSnapshot> &servers)
        override;
    std::size_t route(const Job &job, const FarmView &farm) override;
    std::string name() const override { return "packing"; }

  private:
    double _spillBacklog;
};

/** Inputs available to a dispatcher factory. */
struct DispatcherContext
{
    /** Seed for stochastic dispatchers. */
    std::uint64_t seed = 1;

    /** Spill threshold for the packing dispatcher, seconds. */
    double spillBacklog = 1.0;
};

/** Factory signature stored in the dispatcher registry. */
using DispatcherFactory =
    std::function<std::unique_ptr<Dispatcher>(const DispatcherContext &)>;

/**
 * The dispatcher registry. Ships with "random", "round-robin", "JSQ",
 * and "packing"; extensions register additional routing policies under
 * new names. FarmRuntime validates its configured dispatcher against
 * this registry at construction, so misspelled names fail fast with
 * the registered alternatives listed.
 */
Registry<DispatcherFactory> &dispatcherRegistry();

/** Construct a registered dispatcher by name; fatal() on unknown names. */
std::unique_ptr<Dispatcher> makeDispatcher(const std::string &name,
                                           std::uint64_t seed = 1,
                                           double spill_backlog = 1.0);

} // namespace sleepscale

#endif // SLEEPSCALE_FARM_DISPATCHER_HH
