#include "farm/farm_runtime.hh"

#include <algorithm>
#include <cmath>

#include "core/policy_manager.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace sleepscale {

namespace {

constexpr double secondsPerMinute = 60.0;

/**
 * Rebuild a logged job history as an evaluation log whose offered load
 * equals the predicted per-server utilization: gaps between consecutive
 * logged arrivals keep their shape and are scaled uniformly so
 * demand / span lands on the (clamped) prediction. Returns an empty log
 * when the history is too thin or degenerate to characterize (fewer
 * than two jobs, zero span, or zero demand).
 */
std::vector<Job>
rescaleHistoryToPrediction(const std::vector<Job> &history,
                           double predicted)
{
    std::vector<Job> log;
    if (history.size() < 2)
        return log;
    const double span = history.back().arrival - history.front().arrival;
    double demand = 0.0;
    for (std::size_t i = 1; i < history.size(); ++i)
        demand += history[i].size;
    if (span <= 0.0 || demand <= 0.0)
        return log;

    const double measured = demand / span;
    const double target = std::clamp(predicted, 0.01, 0.99);
    const double gap_scale = measured / target;
    log.reserve(history.size());
    double clock =
        span / static_cast<double>(history.size()) * gap_scale;
    log.push_back({clock, history.front().size});
    for (std::size_t i = 1; i < history.size(); ++i) {
        clock += (history[i].arrival - history[i - 1].arrival) *
                 gap_scale;
        log.push_back({clock, history[i].size});
    }
    return log;
}

/** Drop all but the most recent `cap` jobs of a rolling history. */
void
trimHistory(std::vector<Job> &history, std::size_t cap)
{
    if (history.size() > cap) {
        history.erase(history.begin(),
                      history.end() - static_cast<std::ptrdiff_t>(cap));
    }
}

/** Whether a harvested window (an epoch's, or a server's whole-run
 * total) met the QoS budget. An empty window never qualifies: it has
 * no response statistic, so it neither arms the over-provisioning
 * boost nor counts as budget-compliant in reports. */
bool
windowWithinBudget(const QosConstraint &qos, const SimStats &stats)
{
    return stats.completions > 0 && qos.satisfiedBy(stats);
}

/** Raise a decided policy's frequency by (1 + α) when the previous
 * epoch met its budget (Section 5.2.3). Returns whether it boosted. */
bool
applyOverProvision(Policy &policy, double alpha, bool last_within)
{
    if (alpha <= 0.0 || !last_within)
        return false;
    const double boosted =
        std::min(1.0, policy.frequency * (1.0 + alpha));
    if (boosted <= policy.frequency)
        return false;
    policy.frequency = boosted;
    return true;
}

} // namespace

std::unique_ptr<JobSource>
makeFarmSource(const WorkloadSpec &spec, const UtilizationTrace &trace,
               std::size_t farm_size, std::uint64_t seed)
{
    fatalIf(farm_size == 0, "makeFarmSource: farm size must be >= 1");
    // A farm at per-server load rho sees rho * size aggregate demand:
    // the rate multiplier shrinks the mean inter-arrival by the farm
    // size while keeping the gap distribution's shape and the true
    // service demands.
    return std::make_unique<TraceDrivenSource>(
        spec, trace, seed, static_cast<double>(farm_size));
}

std::vector<Job>
generateFarmJobs(Rng &rng, const WorkloadSpec &spec,
                 const UtilizationTrace &trace, std::size_t farm_size)
{
    fatalIf(farm_size == 0, "generateFarmJobs: farm size must be >= 1");
    TraceDrivenSource source(spec, trace, rng,
                             static_cast<double>(farm_size));
    std::vector<Job> jobs = materialize(source);
    rng = source.rng();
    return jobs;
}

FarmRuntime::FarmRuntime(const PlatformModel &platform,
                         const WorkloadSpec &spec,
                         FarmRuntimeConfig config)
    : _platform(platform), _spec(spec), _config(std::move(config)),
      _qos(_config.perServer.qosMetric == QosMetric::MeanResponse
               ? QosConstraint::fromBaselineMean(_config.perServer.rhoB,
                                                 spec.serviceMean)
               : QosConstraint::fromBaselineTail(_config.perServer.rhoB,
                                                 spec.serviceMean))
{
    fatalIf(_config.farmSize == 0,
            "FarmRuntime: farm size must be >= 1");
    fatalIf(_config.perServer.epochMinutes == 0,
            "FarmRuntime: epochMinutes must be positive");
    fatalIf(_config.control != "farm-wide" &&
                _config.control != "per-server",
            "FarmRuntime: unknown control mode '" + _config.control +
                "' (use \"farm-wide\" or \"per-server\")");
    // Fail fast on misspelled dispatcher names: get() lists the
    // registered alternatives, and catching it here (instead of inside
    // run()) surfaces the mistake while the configuration site is still
    // on the stack.
    dispatcherRegistry().get(_config.dispatcher);

    // Resolve the per-server platform mix. The resolved vector is sized
    // here once and never mutated again: the per-server managers hold
    // references into it.
    if (!_config.platforms.empty()) {
        fatalIf(_config.platforms.size() != _config.farmSize,
                "FarmRuntime: platforms lists " +
                    std::to_string(_config.platforms.size()) +
                    " entries for a farm of " +
                    std::to_string(_config.farmSize) +
                    " servers (give one platform name per server, or "
                    "none for a homogeneous farm)");
        _resolvedPlatforms.reserve(_config.platforms.size());
        for (const std::string &name : _config.platforms)
            _resolvedPlatforms.push_back(platformByName(name));
        bool heterogeneous = false;
        for (const std::string &name : _config.platforms)
            heterogeneous =
                heterogeneous || name != _config.platforms.front();
        fatalIf(heterogeneous && !perServerControl(),
                "FarmRuntime: a heterogeneous platform mix needs "
                "control = \"per-server\" (one farm-wide decision "
                "cannot bind to multiple power models)");
    }
    _serverPlatforms.reserve(_config.farmSize);
    for (std::size_t i = 0; i < _config.farmSize; ++i)
        _serverPlatforms.push_back(_resolvedPlatforms.empty()
                                       ? &_platform
                                       : &_resolvedPlatforms[i]);

    if (!_config.perServer.fixedPolicy) {
        if (perServerControl()) {
            _managers.reserve(_config.farmSize);
            for (std::size_t i = 0; i < _config.farmSize; ++i) {
                _managers.push_back(std::make_unique<PolicyManager>(
                    *_serverPlatforms[i], _spec.scaling,
                    _config.perServer.space, _qos,
                    _config.perServer.search));
            }
        } else {
            _manager = std::make_unique<PolicyManager>(
                *_serverPlatforms.front(), _spec.scaling,
                _config.perServer.space, _qos, _config.perServer.search);
        }
    }
}

bool
FarmRuntime::perServerControl() const
{
    return _config.control == "per-server";
}

const PolicyManager &
FarmRuntime::serverManager(std::size_t server) const
{
    fatalIf(_managers.empty(),
            "FarmRuntime::serverManager: no per-server managers (needs "
            "control = \"per-server\" and no fixed policy)");
    fatalIf(server >= _managers.size(),
            "FarmRuntime::serverManager: server index out of range");
    return *_managers[server];
}

const PlatformModel &
FarmRuntime::serverPlatform(std::size_t server) const
{
    fatalIf(server >= _serverPlatforms.size(),
            "FarmRuntime::serverPlatform: server index out of range");
    return *_serverPlatforms[server];
}

FarmRuntimeResult
FarmRuntime::run(const std::vector<Job> &jobs,
                 const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    VectorSource source = VectorSource::view(jobs);
    return run(source, trace, predictor);
}

FarmRuntimeResult
FarmRuntime::run(JobSource &source, const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    fatalIf(trace.empty(), "FarmRuntime::run: empty trace");
    return perServerControl() ? runPerServer(source, trace, predictor)
                              : runFarmWide(source, trace, predictor);
}

FarmRuntimeResult
FarmRuntime::runFarmWide(JobSource &source, const UtilizationTrace &trace,
                         UtilizationPredictor &predictor) const
{
    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.perServer.epochMinutes;
    const double farm_size = static_cast<double>(_config.farmSize);

    ServerFarm farm(_serverPlatforms, _spec.scaling,
                    _config.perServer.initialPolicy,
                    makeDispatcher(_config.dispatcher,
                                   _config.dispatchSeed,
                                   _config.packingSpillBacklog));

    FarmRuntimeResult result;
    result.qos = _qos;
    result.control = _config.control;
    result.servers.resize(_config.farmSize);
    for (std::size_t i = 0; i < _config.farmSize; ++i) {
        result.servers[i].server = i;
        result.servers[i].platform = _serverPlatforms[i]->name();
    }

    // One-job lookahead; the only job buffer kept across the run is
    // the thinned decision log below, capped at evalLogCap.
    Job pending;
    bool has_pending = source.next(pending);
    std::vector<Job> history;     // Thinned to one server's view.
    bool last_epoch_within_budget = false;
    Policy current = _config.perServer.initialPolicy;

    EpochReport epoch;
    epoch.policy = current;

    // Close the current epoch: attribute per-server windows, merge the
    // farm view, and remember whether the farm met its budget.
    auto closeEpoch = [&](const std::vector<SimStats> &windows) {
        for (std::size_t i = 0; i < windows.size(); ++i)
            result.servers[i].total.merge(windows[i]);
        epoch.stats = ServerFarm::mergeWindows(windows);
        last_epoch_within_budget = windowWithinBudget(_qos, epoch.stats);
        result.epochs.push_back(epoch);
    };

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            farm.advanceTo(t);

            if (minute > 0)
                closeEpoch(farm.harvestWindows());

            epoch = EpochReport{};
            epoch.index = result.epochs.size();
            epoch.startTime = t;

            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);
            epoch.predictedUtilization = predicted;

            if (_config.perServer.fixedPolicy) {
                current = *_config.perServer.fixedPolicy;
                epoch.decided = true;
                epoch.feasible = true;
            } else if (history.size() >= 2) {
                // Rescale the thinned log to the predicted per-server
                // load (shape-preserving gap scaling, as in the
                // single-server runtime's buildEvalLog; the farm keeps
                // one rolling history rather than per-epoch buckets).
                const std::vector<Job> log =
                    rescaleHistoryToPrediction(history, predicted);
                if (!log.empty()) {
                    const PolicyDecision decision =
                        _manager->selectFromLog(log);
                    current = decision.policy;
                    epoch.feasible = decision.feasible;
                    epoch.decided = true;
                    epoch.boosted = applyOverProvision(
                        current, _config.perServer.overProvision,
                        last_epoch_within_budget);
                }
                // Bound the rolling log.
                trimHistory(history, _config.perServer.evalLogCap);
            }

            epoch.policy = current;
            farm.setPolicy(current, t);
        }

        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            const std::size_t routed = farm.offerJob(pending);
            minute_demand += pending.size;
            // Thin the aggregate stream down to one server's view by
            // logging exactly the jobs the dispatcher routed to server
            // 0 — the literal arrival process of a representative
            // back-end (a deterministic every-Nth pick would smooth
            // the gaps toward Erlang shape and bias the decision
            // optimistic). Per-server control generalizes this log to
            // every server. Fixed-policy runs never decide, so they
            // keep no log at all — the stream passes through in O(1)
            // job memory.
            if (!_config.perServer.fixedPolicy && routed == 0)
                history.push_back(pending);
            has_pending = source.next(pending);
        }
        farm.advanceTo(minute_end);

        const double observed = std::clamp(
            minute_demand / (secondsPerMinute * farm_size), 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    const double horizon =
        std::max(trace.duration(), farm.nextFreeTime());
    farm.advanceTo(horizon);
    closeEpoch(farm.harvestWindows());

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    result.jobsPerServer = farm.jobsPerServer();
    for (std::size_t i = 0; i < _config.farmSize; ++i) {
        result.servers[i].jobsRouted = result.jobsPerServer[i];
        // A server that completed nothing has no response statistic to
        // meet the budget with — report it as not-within rather than
        // vacuously compliant.
        result.servers[i].withinBudget =
            windowWithinBudget(_qos, result.servers[i].total);
    }
    return result;
}

FarmRuntimeResult
FarmRuntime::runPerServer(JobSource &source,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const
{
    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.perServer.epochMinutes;
    const std::size_t size = _config.farmSize;
    const double farm_size = static_cast<double>(size);
    const bool fixed =
        static_cast<bool>(_config.perServer.fixedPolicy);

    ServerFarm farm(_serverPlatforms, _spec.scaling,
                    _config.perServer.initialPolicy,
                    makeDispatcher(_config.dispatcher,
                                   _config.dispatchSeed,
                                   _config.packingSpillBacklog));

    FarmRuntimeResult result;
    result.qos = _qos;
    result.control = _config.control;
    result.servers.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
        result.servers[i].server = i;
        result.servers[i].platform = _serverPlatforms[i]->name();
    }

    // Per-server rolling logs of the jobs the dispatcher actually
    // routed to each back-end — the local view each autonomous
    // controller characterizes. Fixed-policy runs keep none.
    std::vector<std::vector<Job>> history(size);
    std::vector<Policy> current(size,
                                _config.perServer.initialPolicy);
    std::vector<bool> last_within(size, false);
    std::vector<EpochReport> server_epoch(size);
    for (std::size_t i = 0; i < size; ++i)
        server_epoch[i].policy = current[i];

    // Scratch for the parallel decision fan-out, indexed by server so
    // the reduction below is deterministic for any pool width.
    std::vector<PolicyDecision> decisions(size);
    std::vector<char> decided(size, 0);

    // The decision pool lives for one run, not the runtime's lifetime:
    // idle FarmRuntimes (e.g. queued behind an ExperimentRunner sweep)
    // then hold no worker threads, which keeps thread counts sane when
    // many farm scenarios run concurrently.
    std::unique_ptr<ThreadPool> decision_pool;
    if (!fixed) {
        const std::size_t lanes =
            _config.decisionThreads == 0
                ? std::min(size, ThreadPool::hardwareLanes())
                : std::min(_config.decisionThreads, size);
        decision_pool = std::make_unique<ThreadPool>(lanes);
    }

    Job pending;
    bool has_pending = source.next(pending);

    // Close the epoch on every server: attribute per-server windows,
    // push per-server reports, and merge the farm-level view.
    auto closeEpoch = [&](const std::vector<SimStats> &windows) {
        for (std::size_t i = 0; i < size; ++i) {
            server_epoch[i].stats = windows[i];
            last_within[i] = windowWithinBudget(_qos, windows[i]);
            result.servers[i].total.merge(windows[i]);
            result.servers[i].epochs.push_back(server_epoch[i]);
        }
        EpochReport merged = server_epoch.front();
        merged.stats = ServerFarm::mergeWindows(windows);
        result.epochs.push_back(merged);
    };

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            farm.advanceTo(t);

            if (minute > 0)
                closeEpoch(farm.harvestWindows());

            const std::size_t epoch_index = result.epochs.size();
            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);

            if (fixed) {
                for (std::size_t i = 0; i < size; ++i)
                    current[i] = *_config.perServer.fixedPolicy;
            } else {
                // Fan the per-server selections out across the pool.
                // Each lane touches only its own server's history and
                // manager (one eval engine per server), results land by
                // server index, and the reduction below runs in index
                // order — so any pool width is bit-identical to serial.
                std::fill(decided.begin(), decided.end(), 0);
                decision_pool->parallelFor(
                    size, [&](std::size_t i, std::size_t) {
                        const std::vector<Job> log =
                            rescaleHistoryToPrediction(history[i],
                                                       predicted);
                        if (log.empty())
                            return;
                        decisions[i] = _managers[i]->selectFromLog(log);
                        decided[i] = 1;
                    });
            }

            for (std::size_t i = 0; i < size; ++i) {
                EpochReport &epoch = server_epoch[i];
                epoch = EpochReport{};
                epoch.index = epoch_index;
                epoch.startTime = t;
                epoch.predictedUtilization = predicted;
                if (fixed) {
                    epoch.decided = true;
                    epoch.feasible = true;
                } else if (decided[i]) {
                    current[i] = decisions[i].policy;
                    epoch.feasible = decisions[i].feasible;
                    epoch.decided = true;
                    epoch.boosted = applyOverProvision(
                        current[i], _config.perServer.overProvision,
                        last_within[i]);
                }
                if (!fixed)
                    trimHistory(history[i],
                                _config.perServer.evalLogCap);
                epoch.policy = current[i];
                farm.setPolicy(i, current[i], t);
            }
        }

        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            const std::size_t routed = farm.offerJob(pending);
            minute_demand += pending.size;
            // Each server logs exactly the jobs dispatched to it — its
            // own local view, nothing shared.
            if (!fixed)
                history[routed].push_back(pending);
            has_pending = source.next(pending);
        }
        farm.advanceTo(minute_end);

        const double observed = std::clamp(
            minute_demand / (secondsPerMinute * farm_size), 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    const double horizon =
        std::max(trace.duration(), farm.nextFreeTime());
    farm.advanceTo(horizon);
    closeEpoch(farm.harvestWindows());

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    result.jobsPerServer = farm.jobsPerServer();
    for (std::size_t i = 0; i < size; ++i) {
        result.servers[i].jobsRouted = result.jobsPerServer[i];
        // As in runFarmWide: no completions, no budget claim.
        result.servers[i].withinBudget =
            windowWithinBudget(_qos, result.servers[i].total);
    }
    return result;
}

} // namespace sleepscale
