#include "farm/farm_runtime.hh"

#include <algorithm>
#include <cmath>

#include "core/policy_manager.hh"
#include "util/error.hh"

namespace sleepscale {

namespace {

constexpr double secondsPerMinute = 60.0;

} // namespace

std::unique_ptr<JobSource>
makeFarmSource(const WorkloadSpec &spec, const UtilizationTrace &trace,
               std::size_t farm_size, std::uint64_t seed)
{
    fatalIf(farm_size == 0, "makeFarmSource: farm size must be >= 1");
    // A farm at per-server load rho sees rho * size aggregate demand:
    // the rate multiplier shrinks the mean inter-arrival by the farm
    // size while keeping the gap distribution's shape and the true
    // service demands.
    return std::make_unique<TraceDrivenSource>(
        spec, trace, seed, static_cast<double>(farm_size));
}

std::vector<Job>
generateFarmJobs(Rng &rng, const WorkloadSpec &spec,
                 const UtilizationTrace &trace, std::size_t farm_size)
{
    fatalIf(farm_size == 0, "generateFarmJobs: farm size must be >= 1");
    TraceDrivenSource source(spec, trace, rng,
                             static_cast<double>(farm_size));
    std::vector<Job> jobs = materialize(source);
    rng = source.rng();
    return jobs;
}

FarmRuntime::FarmRuntime(const PlatformModel &platform,
                         const WorkloadSpec &spec,
                         FarmRuntimeConfig config)
    : _platform(platform), _spec(spec), _config(std::move(config)),
      _qos(_config.perServer.qosMetric == QosMetric::MeanResponse
               ? QosConstraint::fromBaselineMean(_config.perServer.rhoB,
                                                 spec.serviceMean)
               : QosConstraint::fromBaselineTail(_config.perServer.rhoB,
                                                 spec.serviceMean))
{
    fatalIf(_config.farmSize == 0,
            "FarmRuntime: farm size must be >= 1");
    fatalIf(_config.perServer.epochMinutes == 0,
            "FarmRuntime: epochMinutes must be positive");
    // Fail fast on misspelled dispatcher names: get() lists the
    // registered alternatives, and catching it here (instead of inside
    // run()) surfaces the mistake while the configuration site is still
    // on the stack.
    dispatcherRegistry().get(_config.dispatcher);
    if (!_config.perServer.fixedPolicy) {
        _manager = std::make_unique<PolicyManager>(
            _platform, _spec.scaling, _config.perServer.space, _qos,
            _config.perServer.search);
    }
}

FarmRuntimeResult
FarmRuntime::run(const std::vector<Job> &jobs,
                 const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    VectorSource source = VectorSource::view(jobs);
    return run(source, trace, predictor);
}

FarmRuntimeResult
FarmRuntime::run(JobSource &source, const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    fatalIf(trace.empty(), "FarmRuntime::run: empty trace");

    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.perServer.epochMinutes;
    const double farm_size = static_cast<double>(_config.farmSize);

    ServerFarm farm(_platform, _spec.scaling,
                    _config.perServer.initialPolicy, _config.farmSize,
                    makeDispatcher(_config.dispatcher,
                                   _config.dispatchSeed,
                                   _config.packingSpillBacklog));

    FarmRuntimeResult result;
    result.qos = _qos;

    // One-job lookahead; the only job buffer kept across the run is
    // the thinned decision log below, capped at evalLogCap.
    Job pending;
    bool has_pending = source.next(pending);
    std::vector<Job> history;     // Thinned to one server's view.
    std::size_t thin_counter = 0;
    bool last_epoch_within_budget = false;
    Policy current = _config.perServer.initialPolicy;
    Rng thin_rng(_config.dispatchSeed + 77);

    EpochReport epoch;
    epoch.policy = current;

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            farm.advanceTo(t);

            if (minute > 0) {
                epoch.stats = farm.harvestWindow();
                last_epoch_within_budget =
                    epoch.stats.completions > 0 &&
                    _qos.satisfiedBy(epoch.stats);
                result.epochs.push_back(epoch);
            }

            epoch = EpochReport{};
            epoch.index = result.epochs.size();
            epoch.startTime = t;

            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);
            epoch.predictedUtilization = predicted;

            if (_config.perServer.fixedPolicy) {
                current = *_config.perServer.fixedPolicy;
                epoch.decided = true;
                epoch.feasible = true;
            } else if (history.size() >= 2) {
                // Rescale the thinned log to the predicted per-server
                // load (same construction as the single-server runtime).
                const double span =
                    history.back().arrival - history.front().arrival;
                double demand = 0.0;
                for (std::size_t i = 1; i < history.size(); ++i)
                    demand += history[i].size;
                if (span > 0.0 && demand > 0.0) {
                    const double measured = demand / span;
                    const double target =
                        std::clamp(predicted, 0.01, 0.99);
                    const double gap_scale = measured / target;
                    std::vector<Job> log;
                    log.reserve(history.size());
                    double clock = span /
                                   static_cast<double>(history.size()) *
                                   gap_scale;
                    log.push_back({clock, history.front().size});
                    for (std::size_t i = 1; i < history.size(); ++i) {
                        clock += (history[i].arrival -
                                  history[i - 1].arrival) *
                                 gap_scale;
                        log.push_back({clock, history[i].size});
                    }
                    const PolicyDecision decision =
                        _manager->selectFromLog(log);
                    current = decision.policy;
                    epoch.feasible = decision.feasible;
                    epoch.decided = true;
                    if (_config.perServer.overProvision > 0.0 &&
                        last_epoch_within_budget) {
                        const double boosted = std::min(
                            1.0,
                            current.frequency *
                                (1.0 +
                                 _config.perServer.overProvision));
                        if (boosted > current.frequency) {
                            current.frequency = boosted;
                            epoch.boosted = true;
                        }
                    }
                }
                // Bound the rolling log.
                if (history.size() > _config.perServer.evalLogCap) {
                    history.erase(
                        history.begin(),
                        history.end() -
                            static_cast<std::ptrdiff_t>(
                                _config.perServer.evalLogCap));
                }
            }

            epoch.policy = current;
            farm.setPolicy(current, t);
        }

        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            farm.offerJob(pending);
            minute_demand += pending.size;
            // Thin the aggregate stream down to one server's share so
            // the policy manager characterizes a single back-end.
            // Fixed-policy runs never decide, so they keep no log at
            // all — the stream passes through in O(1) job memory.
            if (!_config.perServer.fixedPolicy &&
                thin_counter++ % _config.farmSize == 0)
                history.push_back(pending);
            has_pending = source.next(pending);
        }
        farm.advanceTo(minute_end);

        const double observed = std::clamp(
            minute_demand / (secondsPerMinute * farm_size), 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    const double horizon =
        std::max(trace.duration(), farm.nextFreeTime());
    farm.advanceTo(horizon);
    epoch.stats = farm.harvestWindow();
    result.epochs.push_back(epoch);

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    result.jobsPerServer = farm.jobsPerServer();
    return result;
}

} // namespace sleepscale
