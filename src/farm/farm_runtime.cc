#include "farm/farm_runtime.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>

#include "control/controller_manager.hh"
#include "core/policy_manager.hh"
#include "farm/rate_scaler.hh"
#include "util/error.hh"
#include "util/monotonic_clock.hh"
#include "util/thread_pool.hh"

namespace sleepscale {

namespace {

constexpr double secondsPerMinute = 60.0;

// Shard width for the farm's per-server accounting loops: explicit
// widths are honored (capped at the farm size); 0 sizes automatically
// at one lane per 1024 servers, capped at the hardware concurrency,
// so small farms stay serial and huge farms fan out.
std::size_t
resolveShards(std::size_t shards, std::size_t farm_size)
{
    if (shards != 0)
        return std::min(shards, std::max<std::size_t>(farm_size, 1));
    const std::size_t by_size = farm_size / 1024 + 1;
    return std::min(by_size, ThreadPool::hardwareLanes());
}

/** Build the fault-source configuration a runtime config describes. */
FaultSourceConfig
faultConfigOf(const FarmRuntimeConfig &config)
{
    FaultSourceConfig fault;
    fault.farmSize = config.farmSize;
    fault.mtbf = config.mtbf;
    fault.mttr = config.mttr;
    fault.correlatedGroup = config.correlatedGroup;
    fault.script = config.faultScript;
    fault.seed = config.faultSeed;
    return fault;
}

/**
 * Drives one run's availability plane: applies crash/recovery events
 * to the farm in time order, and owns the failover retry queue — jobs
 * that found every server down, waiting out a capped exponential
 * backoff in sim time until a retry succeeds or the drop timeout
 * expires. Inactive ("none") drivers reduce to the plain offerJob()
 * path, so fault-free runs reproduce the pre-fault farm bit-for-bit.
 */
class FaultDriver
{
  public:
    FaultDriver(ServerFarm &farm, const FarmRuntimeConfig &config)
        : _farm(farm), _active(config.faults != "none"),
          _backoff(config.retryBackoff),
          _backoffCap(std::max(config.retryBackoffCap,
                               config.retryBackoff)),
          _dropTimeout(config.dropTimeout)
    {
        if (_active) {
            _source = makeFaultSource(config.faults,
                                      faultConfigOf(config));
            _hasEvent = _source->next(_event);
        }
    }

    /** Whether a fault schedule is driving this run. */
    bool active() const { return _active; }

    /** Called with (job, server) for every admission that happens
     * inside the retry queue, so run loops can keep their decision
     * logs complete. */
    void setAdmitHook(std::function<void(const Job &, std::size_t)> hook)
    {
        _onAdmit = std::move(hook);
    }

    /**
     * Apply fault events and due retries up to time t, interleaved in
     * time order (events win ties so a recovery at t can admit a retry
     * due at t).
     */
    void catchUp(double t)
    {
        if (!_active)
            return;
        for (;;) {
            const bool event_due = _hasEvent && _event.time <= t;
            const bool retry_due =
                !_queue.empty() && _queue.front().due <= t;
            if (event_due &&
                (!retry_due || _event.time <= _queue.front().due)) {
                applyEvent();
            } else if (retry_due) {
                retryFront();
            } else {
                break;
            }
        }
    }

    /**
     * Offer a fresh arrival (catchUp(job.arrival) must have run).
     * When every server is down the job enters the retry queue.
     *
     * @return Admitting server index, or ServerFarm::noServer.
     */
    std::size_t offer(const Job &job)
    {
        ++_stats.offered;
        const std::size_t pick = _farm.tryOfferJob(job);
        if (pick != ServerFarm::noServer) {
            ++_stats.admitted;
            return pick;
        }
        schedule(job, job.arrival, job.arrival + _dropTimeout);
        return ServerFarm::noServer;
    }

    /**
     * After the arrival stream ends: keep interleaving events and
     * retries until the queue empties (every entry is eventually
     * admitted or dropped — backoff delays are strictly positive).
     */
    void drain()
    {
        while (_active && !_queue.empty())
            catchUp(_queue.front().due);
    }

    /** Offered/admitted/dropped/retry counters so far. */
    const FarmFaultStats &stats() const { return _stats; }

    /** Jobs currently waiting in the retry queue. */
    std::size_t queued() const { return _queue.size(); }

  private:
    /** One parked job: when to retry it and when to give up. */
    struct RetryEntry
    {
        Job job;
        double due = 0.0;      ///< Next dispatch attempt, sim time.
        double deadline = 0.0; ///< Original arrival + drop timeout.
        unsigned attempts = 0; ///< Failed dispatch attempts so far.
    };

    void applyEvent()
    {
        fatalIf(_event.server >= _farm.size(),
                "FaultDriver: fault event names server " +
                    std::to_string(_event.server) + " in a farm of " +
                    std::to_string(_farm.size()));
        if (_event.down)
            _farm.failServer(_event.server, _event.time);
        else
            _farm.restoreServer(_event.server, _event.time);
        _hasEvent = _source->next(_event);
    }

    void retryFront()
    {
        RetryEntry entry = _queue.front();
        _queue.pop_front();
        ++_stats.retries;
        entry.job.arrival = entry.due;
        const std::size_t pick = _farm.tryOfferJob(entry.job);
        if (pick != ServerFarm::noServer) {
            ++_stats.admitted;
            if (_onAdmit)
                _onAdmit(entry.job, pick);
            return;
        }
        ++entry.attempts;
        scheduleEntry(std::move(entry));
    }

    void schedule(const Job &job, double now, double deadline)
    {
        RetryEntry entry;
        entry.job = job;
        entry.due = now;
        entry.deadline = deadline;
        entry.attempts = 1;
        scheduleEntry(std::move(entry));
    }

    void scheduleEntry(RetryEntry entry)
    {
        const double delay = failoverBackoffDelay(
            _backoff, entry.attempts, _backoffCap);
        entry.due += delay;
        if (entry.due > entry.deadline) {
            ++_stats.dropped; // Recorded SLO loss.
            return;
        }
        // Keep the queue sorted by due time (stable for ties), so
        // retries replay in deterministic order.
        auto at = std::upper_bound(_queue.begin(), _queue.end(),
                                   entry.due,
                                   [](double due, const RetryEntry &e) {
                                       return due < e.due;
                                   });
        _queue.insert(at, std::move(entry));
    }

    ServerFarm &_farm;
    bool _active;
    double _backoff;
    double _backoffCap;
    double _dropTimeout;
    std::unique_ptr<FaultSource> _source;
    FaultEvent _event;
    bool _hasEvent = false;
    std::deque<RetryEntry> _queue;
    FarmFaultStats _stats;
    std::function<void(const Job &, std::size_t)> _onAdmit;
};

/**
 * Rebuild a logged job history as an evaluation log whose offered load
 * equals the predicted per-server utilization: gaps between consecutive
 * logged arrivals keep their shape and are scaled uniformly so
 * demand / span lands on the (clamped) prediction. Returns an empty log
 * when the history is too thin or degenerate to characterize (fewer
 * than two jobs, zero span, or zero demand).
 */
std::vector<Job>
rescaleHistoryToPrediction(const std::vector<Job> &history,
                           double predicted)
{
    std::vector<Job> log;
    if (history.size() < 2)
        return log;
    const double span = history.back().arrival - history.front().arrival;
    double demand = 0.0;
    for (std::size_t i = 1; i < history.size(); ++i)
        demand += history[i].size;
    if (span <= 0.0 || demand <= 0.0)
        return log;

    const double measured = demand / span;
    const double target = std::clamp(predicted, 0.01, 0.99);
    const double gap_scale = measured / target;
    log.reserve(history.size());
    double clock =
        span / static_cast<double>(history.size()) * gap_scale;
    log.push_back({clock, history.front().size});
    for (std::size_t i = 1; i < history.size(); ++i) {
        clock += (history[i].arrival - history[i - 1].arrival) *
                 gap_scale;
        log.push_back({clock, history[i].size});
    }
    return log;
}

/** Drop all but the most recent `cap` jobs of a rolling history. */
void
trimHistory(std::vector<Job> &history, std::size_t cap)
{
    if (history.size() > cap) {
        history.erase(history.begin(),
                      history.end() - static_cast<std::ptrdiff_t>(cap));
    }
}

/** Whether a harvested window (an epoch's, or a server's whole-run
 * total) met the QoS budget. An empty window never qualifies: it has
 * no response statistic, so it neither arms the over-provisioning
 * boost nor counts as budget-compliant in reports. */
bool
windowWithinBudget(const QosConstraint &qos, const SimStats &stats)
{
    return stats.completions > 0 && qos.satisfiedBy(stats);
}

/** Raise a decided policy's frequency by (1 + α) when the previous
 * epoch met its budget (Section 5.2.3). Returns whether it boosted. */
bool
applyOverProvision(Policy &policy, double alpha, bool last_within)
{
    if (alpha <= 0.0 || !last_within)
        return false;
    const double boosted =
        std::min(1.0, policy.frequency * (1.0 + alpha));
    if (boosted <= policy.frequency)
        return false;
    policy.frequency = boosted;
    return true;
}

} // namespace

double
failoverBackoffDelay(double backoff, unsigned attempts, double cap)
{
    fatalIf(!(backoff > 0.0) || !std::isfinite(backoff),
            "failoverBackoffDelay: backoff must be positive and "
            "finite seconds");
    fatalIf(attempts == 0, "failoverBackoffDelay: attempts start at 1");
    fatalIf(!(cap >= backoff) || !std::isfinite(cap),
            "failoverBackoffDelay: cap must be finite and >= backoff");
    // Attempt k waits backoff * 2^(k-1), no further than the cap.
    // Saturate before scaling: past 2^1074 even the smallest positive
    // double lands beyond any finite cap, and ldexp toward infinity
    // must never reach the min() as an overflow artifact.
    const unsigned shift = attempts - 1;
    if (shift > 1074)
        return cap;
    const double delay = std::ldexp(backoff, static_cast<int>(shift));
    return std::min(delay, cap);
}

double
FarmFaultStats::availability(std::size_t farm_size) const
{
    const double server_seconds =
        elapsedSeconds * static_cast<double>(farm_size);
    if (server_seconds <= 0.0)
        return 1.0;
    return std::clamp(1.0 - downSeconds / server_seconds, 0.0, 1.0);
}

double
FarmFaultStats::goodput() const
{
    if (offered == 0)
        return 1.0;
    return static_cast<double>(completed) /
           static_cast<double>(offered);
}

std::unique_ptr<JobSource>
makeFarmSource(const WorkloadSpec &spec, const UtilizationTrace &trace,
               std::size_t farm_size, std::uint64_t seed)
{
    fatalIf(farm_size == 0, "makeFarmSource: farm size must be >= 1");
    // A farm at per-server load rho sees rho * size aggregate demand:
    // the rate multiplier shrinks the mean inter-arrival by the farm
    // size while keeping the gap distribution's shape and the true
    // service demands.
    return std::make_unique<TraceDrivenSource>(
        spec, trace, seed, static_cast<double>(farm_size));
}

std::vector<Job>
generateFarmJobs(Rng &rng, const WorkloadSpec &spec,
                 const UtilizationTrace &trace, std::size_t farm_size)
{
    fatalIf(farm_size == 0, "generateFarmJobs: farm size must be >= 1");
    TraceDrivenSource source(spec, trace, rng,
                             static_cast<double>(farm_size));
    std::vector<Job> jobs = materialize(source);
    rng = source.rng();
    return jobs;
}

FarmRuntime::FarmRuntime(const PlatformModel &platform,
                         const WorkloadSpec &spec,
                         FarmRuntimeConfig config)
    : _platform(platform), _spec(spec), _config(std::move(config)),
      _qos(_config.perServer.qosMetric == QosMetric::MeanResponse
               ? QosConstraint::fromBaselineMean(_config.perServer.rhoB,
                                                 spec.serviceMean)
               : QosConstraint::fromBaselineTail(_config.perServer.rhoB,
                                                 spec.serviceMean))
{
    fatalIf(_config.farmSize == 0,
            "FarmRuntime: farm size must be >= 1");
    fatalIf(_config.perServer.epochMinutes == 0,
            "FarmRuntime: epochMinutes must be positive");
    fatalIf(_config.control != "farm-wide" &&
                _config.control != "per-server" &&
                _config.control != "distributed",
            "FarmRuntime: unknown control mode '" + _config.control +
                "' (use \"farm-wide\", \"per-server\", or "
                "\"distributed\")");
    // Fail fast on misspelled dispatcher names: get() lists the
    // registered alternatives, and catching it here (instead of inside
    // run()) surfaces the mistake while the configuration site is still
    // on the stack.
    dispatcherRegistry().get(_config.dispatcher);

    // Fault plane: building a throwaway source validates the name (the
    // registry lists alternatives), the MTBF/MTTR ranges, and every
    // scripted event. "none" skips it all, so fault-free configs never
    // pay for — or trip over — fault validation.
    if (_config.faults != "none") {
        makeFaultSource(_config.faults, faultConfigOf(_config));
        fatalIf(!(_config.retryBackoff > 0.0) ||
                    !std::isfinite(_config.retryBackoff),
                "FarmRuntime: retryBackoff must be positive and "
                "finite seconds");
        fatalIf(!(_config.retryBackoffCap > 0.0) ||
                    !std::isfinite(_config.retryBackoffCap),
                "FarmRuntime: retryBackoffCap must be positive and "
                "finite seconds");
        fatalIf(!(_config.dropTimeout > 0.0) ||
                    !std::isfinite(_config.dropTimeout),
                "FarmRuntime: dropTimeout must be positive and finite "
                "seconds");
        fatalIf(_config.recoverySeconds < 0.0 ||
                    !std::isfinite(_config.recoverySeconds),
                "FarmRuntime: recoverySeconds must be finite and >= 0");
    }

    // Resolve the per-server platform mix. The resolved vector is sized
    // here once and never mutated again: the per-server managers hold
    // references into it.
    if (!_config.platforms.empty()) {
        fatalIf(_config.platforms.size() != _config.farmSize,
                "FarmRuntime: platforms lists " +
                    std::to_string(_config.platforms.size()) +
                    " entries for a farm of " +
                    std::to_string(_config.farmSize) +
                    " servers (give one platform name per server, or "
                    "none for a homogeneous farm)");
        _resolvedPlatforms.reserve(_config.platforms.size());
        for (const std::string &name : _config.platforms)
            _resolvedPlatforms.push_back(platformByName(name));
        bool heterogeneous = false;
        for (const std::string &name : _config.platforms)
            heterogeneous =
                heterogeneous || name != _config.platforms.front();
        fatalIf(heterogeneous && !perServerControl(),
                "FarmRuntime: a heterogeneous platform mix needs "
                "control = \"per-server\" or \"distributed\" (one "
                "farm-wide decision cannot bind to multiple power "
                "models)");
    }
    _serverPlatforms.reserve(_config.farmSize);
    for (std::size_t i = 0; i < _config.farmSize; ++i)
        _serverPlatforms.push_back(_resolvedPlatforms.empty()
                                       ? &_platform
                                       : &_resolvedPlatforms[i]);

    if (!_config.perServer.fixedPolicy) {
        // Either decision path plugs in per slot: the search manager
        // (with its eval engine) or the O(1) feedback controller —
        // per-server control gets one autonomous decider per back-end
        // in both cases.
        const auto make_decider =
            [this](const PlatformModel &server_platform)
            -> std::unique_ptr<EpochDecider> {
            if (_config.control == "distributed") {
                // Zero-communication local rate scaling (Rutten-style,
                // farm/rate_scaler.hh): every server tracks its own
                // offered load; the target anchors at the QoS design
                // point ρ_b, and the sleep plan is pinned to the
                // initial policy's.
                RateScalerOptions options;
                options.targetUtilization = _config.perServer.rhoB;
                return std::make_unique<DistributedRateScaler>(
                    _config.perServer.space.frequencies, _spec.scaling,
                    _config.perServer.initialPolicy, options);
            }
            if (_config.perServer.controller) {
                return std::make_unique<ControllerManager>(
                    server_platform, _spec.scaling,
                    _config.perServer.space, _qos,
                    *_config.perServer.controller,
                    _config.perServer.initialPolicy);
            }
            auto manager = std::make_unique<PolicyManager>(
                server_platform, _spec.scaling,
                _config.perServer.space, _qos,
                _config.perServer.search);
            _searchManagers.push_back(manager.get());
            return manager;
        };
        if (perServerControl()) {
            _managers.reserve(_config.farmSize);
            for (std::size_t i = 0; i < _config.farmSize; ++i)
                _managers.push_back(
                    make_decider(*_serverPlatforms[i]));
        } else {
            _manager = make_decider(*_serverPlatforms.front());
            if (!_searchManagers.empty()) {
                _searchManager = _searchManagers.front();
                _searchManagers.clear();
            }
        }
    }
}

bool
FarmRuntime::perServerControl() const
{
    // "distributed" rides the per-server loop: autonomous deciders
    // fed by local observations, one per back-end. The difference is
    // the decision rule, not the control topology.
    return _config.control == "per-server" ||
           _config.control == "distributed";
}

const PolicyManager &
FarmRuntime::serverManager(std::size_t server) const
{
    fatalIf(_searchManagers.empty(),
            "FarmRuntime::serverManager: no per-server search "
            "managers (needs control = \"per-server\", no fixed "
            "policy, and a search strategy — controller runs expose "
            "serverDecider() instead)");
    fatalIf(server >= _searchManagers.size(),
            "FarmRuntime::serverManager: server index out of range");
    return *_searchManagers[server];
}

const EpochDecider &
FarmRuntime::serverDecider(std::size_t server) const
{
    fatalIf(_managers.empty(),
            "FarmRuntime::serverDecider: no per-server deciders (needs "
            "control = \"per-server\" and no fixed policy)");
    fatalIf(server >= _managers.size(),
            "FarmRuntime::serverDecider: server index out of range");
    return *_managers[server];
}

const PlatformModel &
FarmRuntime::serverPlatform(std::size_t server) const
{
    fatalIf(server >= _serverPlatforms.size(),
            "FarmRuntime::serverPlatform: server index out of range");
    return *_serverPlatforms[server];
}

FarmRuntimeResult
FarmRuntime::run(const std::vector<Job> &jobs,
                 const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    VectorSource source = VectorSource::view(jobs);
    return run(source, trace, predictor);
}

FarmRuntimeResult
FarmRuntime::run(JobSource &source, const UtilizationTrace &trace,
                 UtilizationPredictor &predictor) const
{
    fatalIf(trace.empty(), "FarmRuntime::run: empty trace");
    return perServerControl() ? runPerServer(source, trace, predictor)
                              : runFarmWide(source, trace, predictor);
}

FarmRuntimeResult
FarmRuntime::runFarmWide(JobSource &source, const UtilizationTrace &trace,
                         UtilizationPredictor &predictor) const
{
    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.perServer.epochMinutes;
    const double farm_size = static_cast<double>(_config.farmSize);

    ServerFarm farm(_serverPlatforms, _spec.scaling,
                    _config.perServer.initialPolicy,
                    makeDispatcher(_config.dispatcher,
                                   _config.dispatchSeed,
                                   _config.packingSpillBacklog));

    FarmRuntimeResult result;
    result.qos = _qos;
    result.control = _config.control;
    result.servers.resize(_config.farmSize);
    for (std::size_t i = 0; i < _config.farmSize; ++i) {
        result.servers[i].server = i;
        result.servers[i].platform = _serverPlatforms[i]->name();
    }

    farm.setRecoverySeconds(_config.recoverySeconds);
    farm.setRecordTail(_config.tailHistograms);
    const std::size_t shard_lanes =
        resolveShards(_config.shards, _config.farmSize);
    std::unique_ptr<ThreadPool> shard_pool;
    if (shard_lanes > 1) {
        shard_pool = std::make_unique<ThreadPool>(shard_lanes);
        farm.setShardPool(shard_pool.get());
    }
    FaultDriver faults(farm, _config);

    // One-job lookahead; the only job buffer kept across the run is
    // the thinned decision log below, capped at evalLogCap.
    Job pending;
    bool has_pending = source.next(pending);
    std::vector<Job> history;     // Thinned to one server's view.
    bool last_epoch_within_budget = false;
    Policy current = _config.perServer.initialPolicy;

    // The O(1) controller decides from scalar epoch observations and
    // never reads the log, so controller runs skip log collection
    // entirely (needs_log false).
    const bool needs_log =
        !_config.perServer.fixedPolicy && _manager->needsLog();
    const bool record_decisions = _config.perServer.recordDecisionTime;
    EpochObservation observation;
    double epoch_demand = 0.0;
    std::uint64_t epoch_job_count = 0;

    // Degraded-mode accounting (server-epochs / server-seconds; one
    // farm-wide fallback decision degrades every server). `logged`
    // counts appends to the rolling history so starvation detection
    // can tell "no new jobs this epoch" apart from a trimmed log.
    std::uint64_t cum_completed = 0;
    std::uint64_t degraded_epochs = 0;
    double degraded_seconds = 0.0;
    double down0_mark = 0.0;
    std::uint64_t logged = 0;
    std::uint64_t logged_mark = 0;

    // Jobs re-admitted by the failover queue join the decision log
    // exactly as first-try admissions do (at their re-dispatch time,
    // which is their arrival from the admitting server's view).
    faults.setAdmitHook([&](const Job &job, std::size_t server) {
        if (!_config.perServer.fixedPolicy && server == 0) {
            if (needs_log)
                history.push_back(job);
            ++logged;
        }
    });

    EpochReport epoch;
    epoch.policy = current;

    // Close the current epoch: attribute per-server windows, merge the
    // farm view, remember whether the farm met its budget, and
    // snapshot the cumulative availability-plane counters.
    auto closeEpoch = [&](const std::vector<SimStats> &windows,
                          double now) {
        for (std::size_t i = 0; i < windows.size(); ++i)
            result.servers[i].total.merge(windows[i]);
        epoch.stats = ServerFarm::mergeWindows(windows);
        last_epoch_within_budget = windowWithinBudget(_qos, epoch.stats);
        result.epochs.push_back(epoch);

        cum_completed += epoch.stats.completions;
        FarmFaultStats snap = faults.stats();
        snap.completed = cum_completed;
        snap.inFlight =
            snap.admitted - snap.completed + faults.queued();
        snap.downSeconds = farm.totalDownSeconds();
        snap.degradedSeconds = degraded_seconds;
        snap.degradedEpochs = degraded_epochs;
        snap.elapsedSeconds = now;
        result.epochFaults.push_back(snap);
    };

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            farm.advanceTo(t);

            if (minute > 0) {
                closeEpoch(farm.harvestWindows(), t);

                // Scalar observations of the closed epoch for the
                // log-free decision path (core/epoch_decider.hh):
                // per-server offered load and the farm-merged QoS
                // statistic, captured before the report resets.
                observation.measuredUtilization =
                    epoch_demand / (static_cast<double>(epoch_len) *
                                    secondsPerMinute * farm_size);
                observation.hasMeasurement =
                    epoch.stats.completions > 0;
                observation.measuredQos =
                    observation.hasMeasurement
                        ? _qos.measuredValue(epoch.stats)
                        : 0.0;
                observation.meanJobSize =
                    epoch_job_count > 0
                        ? epoch_demand /
                              static_cast<double>(epoch_job_count)
                        : 0.0;
                observation.applied = current;
                epoch_demand = 0.0;
                epoch_job_count = 0;
            }

            epoch = EpochReport{};
            epoch.index = result.epochs.size();
            epoch.startTime = t;

            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);
            epoch.predictedUtilization = predicted;
            observation.predictedUtilization = predicted;

            // Did the logged server (server 0) lose time to an outage
            // since the last decision *and* log no new jobs? Such an
            // epoch log is fault-starved — the rolling history only
            // holds pre-outage jobs — and searching it would dress
            // stale data as a fresh decision, so it triggers the
            // degraded fallback instead. A log that is merely still
            // warming up (no downtime accrued) keeps the status-quo
            // policy, exactly as a fault-free run would.
            bool outage_starved = false;
            if (faults.active()) {
                const double down0 = farm.downSeconds(0);
                outage_starved =
                    down0 > down0_mark && logged == logged_mark;
                down0_mark = down0;
                logged_mark = logged;
            }

            observation.faultStarved = outage_starved;

            if (_config.perServer.fixedPolicy) {
                current = *_config.perServer.fixedPolicy;
                epoch.decided = true;
                epoch.feasible = true;
            } else if (faults.active()) {
                // Guarded decision path (docs/FAULTS.md): decide as
                // usual, but fall back to the safe fixed policy when
                // the measurement window was starved by an outage or
                // the decision is infeasible. One farm-wide fallback
                // degrades every server for the epoch.
                std::vector<Job> log;
                bool ready = false;
                if (needs_log) {
                    if (!outage_starved)
                        log = rescaleHistoryToPrediction(history,
                                                         predicted);
                    ready = !log.empty() || outage_starved;
                } else {
                    ready = minute > 0;
                }
                if (ready) {
                    const double decide_start =
                        record_decisions ? monotonicMicros() : 0.0;
                    const GuardedDecision guarded =
                        _manager->decideGuarded(
                            observation, log, _config.degradedPolicy);
                    if (record_decisions)
                        epoch.decisionMicros =
                            monotonicMicros() - decide_start;
                    current = guarded.decision.policy;
                    epoch.feasible = guarded.decision.feasible;
                    epoch.decided = true;
                    epoch.degraded = guarded.degraded;
                    if (guarded.degraded) {
                        degraded_epochs += _config.farmSize;
                        degraded_seconds += static_cast<double>(
                                                epoch_len) *
                                            secondsPerMinute *
                                            farm_size;
                    } else {
                        epoch.boosted = applyOverProvision(
                            current, _config.perServer.overProvision,
                            last_epoch_within_budget);
                    }
                }
                if (needs_log)
                    trimHistory(history, _config.perServer.evalLogCap);
            } else {
                // Rescale the thinned log to the predicted per-server
                // load (shape-preserving gap scaling, as in the
                // single-server runtime's buildEvalLog; the farm keeps
                // one rolling history rather than per-epoch buckets).
                // The controller path needs no log — only a closed
                // epoch to have observed.
                std::vector<Job> log;
                bool ready = false;
                if (needs_log) {
                    if (history.size() >= 2) {
                        log = rescaleHistoryToPrediction(history,
                                                         predicted);
                        ready = !log.empty();
                    }
                } else {
                    ready = minute > 0;
                }
                if (ready) {
                    const double decide_start =
                        record_decisions ? monotonicMicros() : 0.0;
                    const PolicyDecision decision =
                        _manager->decide(observation, log);
                    if (record_decisions)
                        epoch.decisionMicros =
                            monotonicMicros() - decide_start;
                    current = decision.policy;
                    epoch.feasible = decision.feasible;
                    epoch.decided = true;
                    epoch.boosted = applyOverProvision(
                        current, _config.perServer.overProvision,
                        last_epoch_within_budget);
                }
                // Bound the rolling log.
                if (needs_log)
                    trimHistory(history, _config.perServer.evalLogCap);
            }

            epoch.policy = current;
            farm.setPolicy(current, t);
        }

        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            faults.catchUp(pending.arrival);
            const std::size_t routed = faults.offer(pending);
            minute_demand += pending.size;
            // Thin the aggregate stream down to one server's view by
            // logging exactly the jobs the dispatcher routed to server
            // 0 — the literal arrival process of a representative
            // back-end (a deterministic every-Nth pick would smooth
            // the gaps toward Erlang shape and bias the decision
            // optimistic). Per-server control generalizes this log to
            // every server. Fixed-policy runs never decide, so they
            // keep no log at all — the stream passes through in O(1)
            // job memory.
            if (!_config.perServer.fixedPolicy && routed == 0) {
                if (needs_log)
                    history.push_back(pending);
                ++logged;
            }
            ++epoch_job_count;
            has_pending = source.next(pending);
        }
        epoch_demand += minute_demand;
        faults.catchUp(minute_end);
        farm.advanceTo(minute_end);

        const double observed = std::clamp(
            minute_demand / (secondsPerMinute * farm_size), 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    // Let the failover queue play out (each entry is admitted or
    // dropped), then run every admitted job to completion.
    faults.drain();
    const double horizon =
        std::max(trace.duration(), farm.nextFreeTime());
    faults.catchUp(horizon);
    farm.advanceTo(horizon);
    closeEpoch(farm.harvestWindows(), horizon);

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    result.faults = result.epochFaults.back();
    result.jobsPerServer = farm.jobsPerServer();
    for (std::size_t i = 0; i < _config.farmSize; ++i) {
        result.servers[i].jobsRouted = result.jobsPerServer[i];
        // A server that completed nothing has no response statistic to
        // meet the budget with — report it as not-within rather than
        // vacuously compliant.
        result.servers[i].withinBudget =
            windowWithinBudget(_qos, result.servers[i].total);
    }
    return result;
}

FarmRuntimeResult
FarmRuntime::runPerServer(JobSource &source,
                          const UtilizationTrace &trace,
                          UtilizationPredictor &predictor) const
{
    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.perServer.epochMinutes;
    const std::size_t size = _config.farmSize;
    const double farm_size = static_cast<double>(size);
    const bool fixed =
        static_cast<bool>(_config.perServer.fixedPolicy);

    ServerFarm farm(_serverPlatforms, _spec.scaling,
                    _config.perServer.initialPolicy,
                    makeDispatcher(_config.dispatcher,
                                   _config.dispatchSeed,
                                   _config.packingSpillBacklog));

    FarmRuntimeResult result;
    result.qos = _qos;
    result.control = _config.control;
    result.servers.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
        result.servers[i].server = i;
        result.servers[i].platform = _serverPlatforms[i]->name();
    }

    farm.setRecoverySeconds(_config.recoverySeconds);
    farm.setRecordTail(_config.tailHistograms);
    const std::size_t shard_lanes =
        resolveShards(_config.shards, _config.farmSize);
    std::unique_ptr<ThreadPool> shard_pool;
    if (shard_lanes > 1) {
        shard_pool = std::make_unique<ThreadPool>(shard_lanes);
        farm.setShardPool(shard_pool.get());
    }
    FaultDriver faults(farm, _config);

    // The O(1) controller path decides from per-server scalar
    // observations; only log-based deciders pay for per-server job
    // logs (needs_log) and only controllers pay for the per-server
    // demand accumulators (track_observations).
    const bool needs_log = !fixed && _managers.front()->needsLog();
    const bool track_observations = !fixed && !needs_log;
    const bool record_decisions = _config.perServer.recordDecisionTime;
    std::vector<EpochObservation> observations(size);
    std::vector<double> epoch_demand(size, 0.0);
    std::vector<std::uint64_t> epoch_job_count(size, 0);

    // Per-server rolling logs of the jobs the dispatcher actually
    // routed to each back-end — the local view each autonomous
    // controller characterizes. Fixed-policy and controller runs
    // keep none.
    std::vector<std::vector<Job>> history(size);
    std::vector<Policy> current(size,
                                _config.perServer.initialPolicy);
    std::vector<bool> last_within(size, false);
    std::vector<EpochReport> server_epoch(size);
    for (std::size_t i = 0; i < size; ++i)
        server_epoch[i].policy = current[i];

    // Per-server log-append counters (starvation detection must tell
    // "no new jobs this epoch" apart from a trimmed rolling history).
    std::vector<std::uint64_t> logged(size, 0);
    std::vector<std::uint64_t> logged_mark(size, 0);

    // Failover re-admissions join the admitting server's local log at
    // their re-dispatch time, like any other routed job.
    faults.setAdmitHook([&](const Job &job, std::size_t server) {
        if (!fixed) {
            if (needs_log)
                history[server].push_back(job);
            ++logged[server];
            if (track_observations) {
                epoch_demand[server] += job.size;
                ++epoch_job_count[server];
            }
        }
    });

    // Scratch for the parallel decision fan-out, indexed by server so
    // the reduction below is deterministic for any pool width.
    std::vector<PolicyDecision> decisions(size);
    std::vector<char> decided(size, 0);
    std::vector<GuardedDecision> guarded(size);

    // Per-server degraded-mode accounting: a log starved by the
    // server's own outage (downtime accrued since its last decision)
    // degrades that server alone.
    std::vector<double> down_mark(size, 0.0);
    std::vector<char> outage_starved(size, 0);
    std::uint64_t cum_completed = 0;
    std::uint64_t degraded_epochs = 0;
    double degraded_seconds = 0.0;

    // The decision pool lives for one run, not the runtime's lifetime:
    // idle FarmRuntimes (e.g. queued behind an ExperimentRunner sweep)
    // then hold no worker threads, which keeps thread counts sane when
    // many farm scenarios run concurrently.
    std::unique_ptr<ThreadPool> decision_pool;
    if (!fixed) {
        const std::size_t lanes =
            _config.decisionThreads == 0
                ? std::min(size, ThreadPool::hardwareLanes())
                : std::min(_config.decisionThreads, size);
        decision_pool = std::make_unique<ThreadPool>(lanes);
    }

    Job pending;
    bool has_pending = source.next(pending);

    // Close the epoch on every server: attribute per-server windows,
    // push per-server reports, merge the farm-level view, and snapshot
    // the cumulative availability-plane counters.
    auto closeEpoch = [&](const std::vector<SimStats> &windows,
                          double now) {
        for (std::size_t i = 0; i < size; ++i) {
            server_epoch[i].stats = windows[i];
            last_within[i] = windowWithinBudget(_qos, windows[i]);
            result.servers[i].total.merge(windows[i]);
            // Per-server epoch streams are O(farm x epochs) memory;
            // scale runs keep only the running totals.
            if (_config.serverEpochReports)
                result.servers[i].epochs.push_back(server_epoch[i]);
        }
        EpochReport merged = server_epoch.front();
        merged.stats = ServerFarm::mergeWindows(windows);
        for (std::size_t i = 0; i < size; ++i)
            merged.degraded = merged.degraded ||
                              server_epoch[i].degraded;
        result.epochs.push_back(merged);

        cum_completed += merged.stats.completions;
        FarmFaultStats snap = faults.stats();
        snap.completed = cum_completed;
        snap.inFlight =
            snap.admitted - snap.completed + faults.queued();
        snap.downSeconds = farm.totalDownSeconds();
        snap.degradedSeconds = degraded_seconds;
        snap.degradedEpochs = degraded_epochs;
        snap.elapsedSeconds = now;
        result.epochFaults.push_back(snap);
    };

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            farm.advanceTo(t);

            if (minute > 0)
                closeEpoch(farm.harvestWindows(), t);

            const std::size_t epoch_index = result.epochs.size();
            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);

            // Per-server outage starvation: downtime accrued since
            // this server's previous decision with no new jobs logged
            // arms its degraded fallback — the rolling history then
            // only holds pre-outage jobs, which must not be dressed
            // up as a fresh decision (a merely-warming-up log, with
            // no downtime, does not degrade).
            if (faults.active()) {
                for (std::size_t i = 0; i < size; ++i) {
                    const double down = farm.downSeconds(i);
                    outage_starved[i] = down > down_mark[i] &&
                                                logged[i] ==
                                                    logged_mark[i]
                                            ? 1
                                            : 0;
                    down_mark[i] = down;
                    logged_mark[i] = logged[i];
                }
            }

            double fanout_micros = 0.0;
            if (fixed) {
                for (std::size_t i = 0; i < size; ++i)
                    current[i] = *_config.perServer.fixedPolicy;
            } else {
                // Per-server observations of the just-closed epoch
                // for the log-free decision path: server_epoch still
                // holds each server's closed window here (the reports
                // reset below), and the demand accumulators hold the
                // epoch's routed work.
                if (track_observations) {
                    const double window_seconds =
                        static_cast<double>(epoch_len) *
                        secondsPerMinute;
                    const bool faults_active = faults.active();
                    for (std::size_t i = 0; i < size; ++i) {
                        EpochObservation &obs = observations[i];
                        const SimStats &window = server_epoch[i].stats;
                        obs.predictedUtilization = predicted;
                        obs.measuredUtilization =
                            minute > 0
                                ? epoch_demand[i] / window_seconds
                                : 0.0;
                        obs.hasMeasurement =
                            minute > 0 && window.completions > 0;
                        obs.measuredQos =
                            obs.hasMeasurement
                                ? _qos.measuredValue(window)
                                : 0.0;
                        obs.meanJobSize =
                            epoch_job_count[i] > 0
                                ? epoch_demand[i] /
                                      static_cast<double>(
                                          epoch_job_count[i])
                                : 0.0;
                        obs.faultStarved =
                            faults_active && outage_starved[i] != 0;
                        obs.applied = current[i];
                        epoch_demand[i] = 0.0;
                        epoch_job_count[i] = 0;
                    }
                }

                // Fan the per-server decisions out across the pool.
                // Each lane touches only its own server's history,
                // observation, and decider (one eval engine or
                // controller per server), results land by server
                // index, and the reduction below runs in index order
                // — so any pool width is bit-identical to serial.
                const bool faults_active = faults.active();
                std::fill(decided.begin(), decided.end(), 0);
                const double fanout_start =
                    record_decisions ? monotonicMicros() : 0.0;
                decision_pool->parallelFor(
                    size, [&](std::size_t i, std::size_t) {
                        std::vector<Job> log;
                        if (needs_log &&
                            !(faults_active && outage_starved[i]))
                            log = rescaleHistoryToPrediction(
                                history[i], predicted);
                        if (faults_active) {
                            // Guarded path (docs/FAULTS.md): starved-
                            // by-outage or infeasible lands on the
                            // safe fixed policy for this server only.
                            if (needs_log) {
                                if (log.empty() && !outage_starved[i])
                                    return;
                            } else if (minute == 0) {
                                return;
                            }
                            guarded[i] = _managers[i]->decideGuarded(
                                observations[i], log,
                                _config.degradedPolicy);
                            decisions[i] = guarded[i].decision;
                            decided[i] = 1;
                            return;
                        }
                        if (needs_log) {
                            if (log.empty())
                                return;
                        } else if (minute == 0) {
                            return;
                        }
                        decisions[i] =
                            _managers[i]->decide(observations[i], log);
                        decided[i] = 1;
                    });
                if (record_decisions)
                    fanout_micros = monotonicMicros() - fanout_start;
            }

            for (std::size_t i = 0; i < size; ++i) {
                EpochReport &epoch = server_epoch[i];
                epoch = EpochReport{};
                epoch.index = epoch_index;
                epoch.startTime = t;
                epoch.predictedUtilization = predicted;
                // The representative report (the merged farm view
                // copies server 0's fields) carries the whole
                // fan-out's wall time: the per-epoch decision cost of
                // the farm, which is what the <1 s-at-10k-servers
                // acceptance bound is about.
                if (i == 0)
                    epoch.decisionMicros = fanout_micros;
                if (fixed) {
                    epoch.decided = true;
                    epoch.feasible = true;
                } else if (decided[i]) {
                    current[i] = decisions[i].policy;
                    epoch.feasible = decisions[i].feasible;
                    epoch.decided = true;
                    epoch.degraded =
                        faults.active() && guarded[i].degraded;
                    if (epoch.degraded) {
                        degraded_epochs += 1;
                        degraded_seconds +=
                            static_cast<double>(epoch_len) *
                            secondsPerMinute;
                    } else {
                        epoch.boosted = applyOverProvision(
                            current[i],
                            _config.perServer.overProvision,
                            last_within[i]);
                    }
                }
                if (needs_log)
                    trimHistory(history[i],
                                _config.perServer.evalLogCap);
                epoch.policy = current[i];
                farm.setPolicy(i, current[i], t);
            }
        }

        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            faults.catchUp(pending.arrival);
            const std::size_t routed = faults.offer(pending);
            minute_demand += pending.size;
            // Each server logs exactly the jobs dispatched to it — its
            // own local view, nothing shared. Farm-wide outages park
            // the job in the failover queue instead; it joins a log
            // via the admit hook if a retry lands.
            if (!fixed && routed != ServerFarm::noServer) {
                if (needs_log)
                    history[routed].push_back(pending);
                ++logged[routed];
                if (track_observations) {
                    epoch_demand[routed] += pending.size;
                    ++epoch_job_count[routed];
                }
            }
            has_pending = source.next(pending);
        }
        faults.catchUp(minute_end);
        farm.advanceTo(minute_end);

        const double observed = std::clamp(
            minute_demand / (secondsPerMinute * farm_size), 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    // Play the failover queue out, then run everything to completion.
    faults.drain();
    const double horizon =
        std::max(trace.duration(), farm.nextFreeTime());
    faults.catchUp(horizon);
    farm.advanceTo(horizon);
    closeEpoch(farm.harvestWindows(), horizon);

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    result.faults = result.epochFaults.back();
    result.jobsPerServer = farm.jobsPerServer();
    for (std::size_t i = 0; i < size; ++i) {
        result.servers[i].jobsRouted = result.jobsPerServer[i];
        // As in runFarmWide: no completions, no budget claim.
        result.servers[i].withinBudget =
            windowWithinBudget(_qos, result.servers[i].total);
    }
    return result;
}

} // namespace sleepscale
