/**
 * @file
 * Deterministic fault injection: seeded streams of server crash and
 * recovery events (docs/FAULTS.md).
 *
 * A FaultSource is the availability-plane twin of JobSource: a
 * pull-based, seed-deterministic stream of timed events, consumed with
 * one-event lookahead by FarmRuntime, which drives each back-end
 * through the up -> draining -> down -> recovering -> up lifecycle in
 * ServerFarm. The same contract applies:
 *
 *  - next() yields events in non-decreasing time order and returns
 *    false forever once the schedule is exhausted (finite sources
 *    only; the MTBF/MTTR processes are endless and are bounded by the
 *    caller's horizon).
 *  - reset(seed) rewinds; equal seeds reproduce the stream
 *    bit-for-bit.
 *  - clone() duplicates mid-stream state, so a cloned source continues
 *    exactly where the original stood.
 *
 * All randomness flows through the seeded Rng streams (util/rng.hh) —
 * never ambient entropy — so fault schedules derived from replication
 * seeds keep parallel paired runs bit-identical at any lane count.
 */

#ifndef SLEEPSCALE_FAULT_FAULT_SOURCE_HH
#define SLEEPSCALE_FAULT_FAULT_SOURCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/registry.hh"
#include "util/rng.hh"

namespace sleepscale {

/** One availability transition of one back-end server. */
struct FaultEvent
{
    /** Event time, seconds since run start. */
    double time = 0.0;

    /** Index of the affected server in [0, farmSize). */
    std::size_t server = 0;

    /** True for a crash (server stops accepting work), false for a
     * recovery (server starts accepting again). */
    bool down = true;
};

/** Pull-based deterministic stream of crash/recovery events. */
class FaultSource
{
  public:
    virtual ~FaultSource() = default;

    /**
     * Produce the next event in non-decreasing time order.
     *
     * @param out Receives the event when one is available.
     * @return False when the schedule is exhausted (and forever after).
     */
    virtual bool next(FaultEvent &out) = 0;

    /** Rewind; equal seeds reproduce the stream bit-for-bit. */
    virtual void reset(std::uint64_t seed) = 0;

    /** Duplicate mid-stream state: the clone continues exactly where
     * this source stands, without disturbing it. */
    virtual std::unique_ptr<FaultSource> clone() const = 0;
};

/** The empty schedule: no server ever fails. A farm driven by this
 * source reproduces the fault-free runtime bit-for-bit (pinned by
 * tests/farm_fault_test.cc). */
class NoFaultSource final : public FaultSource
{
  public:
    bool next(FaultEvent &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<FaultSource> clone() const override;
};

/**
 * Independent per-server exponential failure/repair processes: each
 * server alternates Exp(MTBF) uptime and Exp(MTTR) downtime on its own
 * forked RNG stream, so one server's schedule never perturbs
 * another's. Endless — bound consumption by a time horizon.
 */
class MtbfFaultSource final : public FaultSource
{
  public:
    /**
     * @param farm_size Number of servers scheduled (>= 1).
     * @param mtbf Mean uptime between failures, seconds (> 0).
     * @param mttr Mean downtime to recovery, seconds (> 0).
     * @param seed Master seed; per-server streams are forked from it.
     */
    MtbfFaultSource(std::size_t farm_size, double mtbf, double mttr,
                    std::uint64_t seed);

    bool next(FaultEvent &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<FaultSource> clone() const override;

  private:
    std::size_t _farmSize;
    double _mtbf;
    double _mttr;

    /** One generator per server, forked from the master seed. */
    std::vector<Rng> _rngs;

    /** Each server's next pending transition (index-aligned). */
    std::vector<FaultEvent> _pending;

    void prime(std::uint64_t seed);
};

/**
 * Correlated multi-server outages (a rack or PDU failure): one
 * exponential outage process takes down a contiguous block of servers
 * simultaneously; the whole block recovers together after Exp(MTTR).
 * The next outage is drawn from the recovery point, so outages never
 * overlap. Endless — bound consumption by a time horizon.
 */
class CorrelatedFaultSource final : public FaultSource
{
  public:
    /**
     * @param farm_size Number of servers (>= 1).
     * @param group Servers taken down per outage, clamped to
     *        [1, farm_size]; the block start is drawn uniformly and
     *        wraps around the farm.
     * @param mtbf Mean time between outages, seconds (> 0).
     * @param mttr Mean outage duration, seconds (> 0).
     * @param seed Seed of the outage process.
     */
    CorrelatedFaultSource(std::size_t farm_size, std::size_t group,
                          double mtbf, double mttr, std::uint64_t seed);

    bool next(FaultEvent &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<FaultSource> clone() const override;

  private:
    std::size_t _farmSize;
    std::size_t _group;
    double _mtbf;
    double _mttr;
    Rng _rng;

    /** Events of the outage currently being emitted. */
    std::vector<FaultEvent> _queue;

    /** Next unread index into _queue. */
    std::size_t _cursor = 0;

    /** End time of the last scheduled outage. */
    double _clock = 0.0;

    void scheduleOutage();
};

/**
 * A scripted crash/recovery trace: events are validated up front
 * (non-decreasing times, finite and non-negative, server indices in
 * range) and replayed verbatim. reset() ignores the seed — the script
 * IS the schedule. An empty script is the no-fault schedule.
 */
class ScriptedFaultSource final : public FaultSource
{
  public:
    /**
     * @param farm_size Number of servers events may reference.
     * @param events The schedule, in non-decreasing time order.
     */
    ScriptedFaultSource(std::size_t farm_size,
                        std::vector<FaultEvent> events);

    bool next(FaultEvent &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<FaultSource> clone() const override;

  private:
    std::vector<FaultEvent> _events;
    std::size_t _cursor = 0;
};

/** Everything a registered fault-source factory may need. */
struct FaultSourceConfig
{
    /** Number of back-end servers the schedule drives (>= 1). */
    std::size_t farmSize = 1;

    /** Mean time between failures, seconds ("mtbf"/"correlated"). */
    double mtbf = 4.0 * 3600.0;

    /** Mean time to recovery, seconds ("mtbf"/"correlated"). */
    double mttr = 300.0;

    /** Servers per correlated outage ("correlated" only). */
    std::size_t correlatedGroup = 2;

    /** Scripted schedule ("scripted" only). */
    std::vector<FaultEvent> script;

    /** Seed of the stochastic schedules. */
    std::uint64_t seed = 1;
};

/** Factory signature stored in faultSourceRegistry(). */
using FaultSourceFactory =
    std::function<std::unique_ptr<FaultSource>(const FaultSourceConfig &)>;

/** The registry of fault-source families: "none", "mtbf",
 * "correlated", "scripted". Unknown names fail fast listing the
 * registered alternatives. */
Registry<FaultSourceFactory> &faultSourceRegistry();

/** Construct a registered fault source by name (validates the
 * configuration ranges the family needs). */
std::unique_ptr<FaultSource> makeFaultSource(const std::string &name,
                                             const FaultSourceConfig &config);

/**
 * Drain a source into a vector, stopping at `horizon` (exclusive) or
 * after `max_events`, whichever comes first — the test/bench helper
 * for the endless stochastic schedules.
 */
std::vector<FaultEvent> materializeFaults(FaultSource &source,
                                          double horizon,
                                          std::size_t max_events = 100000);

} // namespace sleepscale

#endif // SLEEPSCALE_FAULT_FAULT_SOURCE_HH
