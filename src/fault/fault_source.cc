#include "fault/fault_source.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace sleepscale {

// --------------------------------------------------------- NoFaultSource

bool
NoFaultSource::next(FaultEvent &)
{
    return false;
}

void
NoFaultSource::reset(std::uint64_t)
{}

std::unique_ptr<FaultSource>
NoFaultSource::clone() const
{
    return std::make_unique<NoFaultSource>();
}

// ------------------------------------------------------- MtbfFaultSource

MtbfFaultSource::MtbfFaultSource(std::size_t farm_size, double mtbf,
                                 double mttr, std::uint64_t seed)
    : _farmSize(farm_size), _mtbf(mtbf), _mttr(mttr)
{
    fatalIf(farm_size == 0,
            "MtbfFaultSource: farm size must be >= 1");
    fatalIf(!(mtbf > 0.0) || !std::isfinite(mtbf),
            "MtbfFaultSource: MTBF must be positive and finite");
    fatalIf(!(mttr > 0.0) || !std::isfinite(mttr),
            "MtbfFaultSource: MTTR must be positive and finite");
    prime(seed);
}

void
MtbfFaultSource::prime(std::uint64_t seed)
{
    // One decorrelated stream per server, forked off the master seed,
    // so server i's schedule is invariant to how far the others have
    // been consumed.
    Rng master(seed);
    _rngs.clear();
    _rngs.reserve(_farmSize);
    _pending.assign(_farmSize, FaultEvent{});
    for (std::size_t i = 0; i < _farmSize; ++i) {
        _rngs.push_back(master.fork(i));
        _pending[i].time = _rngs[i].exponential(_mtbf);
        _pending[i].server = i;
        _pending[i].down = true;
    }
}

bool
MtbfFaultSource::next(FaultEvent &out)
{
    // Emit the globally earliest pending transition (ties break toward
    // the lowest server index — a deterministic index-order scan, not
    // a hash-ordered heap), then advance that server's alternating
    // up/down schedule.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < _farmSize; ++i) {
        if (_pending[i].time < _pending[pick].time)
            pick = i;
    }
    out = _pending[pick];
    FaultEvent &slot = _pending[pick];
    slot.time += slot.down ? _rngs[pick].exponential(_mttr)
                           : _rngs[pick].exponential(_mtbf);
    slot.down = !slot.down;
    return true;
}

void
MtbfFaultSource::reset(std::uint64_t seed)
{
    prime(seed);
}

std::unique_ptr<FaultSource>
MtbfFaultSource::clone() const
{
    // Rng and the pending slots are plain values — member-wise copy IS
    // the full mid-stream state.
    return std::unique_ptr<MtbfFaultSource>(new MtbfFaultSource(*this));
}

// ------------------------------------------------- CorrelatedFaultSource

CorrelatedFaultSource::CorrelatedFaultSource(std::size_t farm_size,
                                             std::size_t group,
                                             double mtbf, double mttr,
                                             std::uint64_t seed)
    : _farmSize(farm_size),
      _group(std::clamp<std::size_t>(group, 1, farm_size)), _mtbf(mtbf),
      _mttr(mttr), _rng(seed)
{
    fatalIf(farm_size == 0,
            "CorrelatedFaultSource: farm size must be >= 1");
    fatalIf(!(mtbf > 0.0) || !std::isfinite(mtbf),
            "CorrelatedFaultSource: MTBF must be positive and finite");
    fatalIf(!(mttr > 0.0) || !std::isfinite(mttr),
            "CorrelatedFaultSource: MTTR must be positive and finite");
    scheduleOutage();
}

void
CorrelatedFaultSource::scheduleOutage()
{
    // Draw the next outage from the end of the previous one, so blocks
    // never overlap: down events for the whole block at the start, up
    // events for the whole block at recovery, servers in index order
    // within each instant.
    const double start = _clock + _rng.exponential(_mtbf);
    const double end = start + _rng.exponential(_mttr);
    const std::size_t first = _rng.uniformInt(_farmSize);
    _queue.clear();
    _cursor = 0;
    for (std::size_t k = 0; k < _group; ++k)
        _queue.push_back({start, (first + k) % _farmSize, true});
    std::sort(_queue.begin(), _queue.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return a.server < b.server;
              });
    const std::size_t downs = _queue.size();
    for (std::size_t k = 0; k < downs; ++k)
        _queue.push_back({end, _queue[k].server, false});
    _clock = end;
}

bool
CorrelatedFaultSource::next(FaultEvent &out)
{
    if (_cursor == _queue.size())
        scheduleOutage();
    out = _queue[_cursor++];
    return true;
}

void
CorrelatedFaultSource::reset(std::uint64_t seed)
{
    _rng = Rng(seed);
    _queue.clear();
    _cursor = 0;
    _clock = 0.0;
    scheduleOutage();
}

std::unique_ptr<FaultSource>
CorrelatedFaultSource::clone() const
{
    return std::unique_ptr<CorrelatedFaultSource>(
        new CorrelatedFaultSource(*this));
}

// --------------------------------------------------- ScriptedFaultSource

ScriptedFaultSource::ScriptedFaultSource(std::size_t farm_size,
                                         std::vector<FaultEvent> events)
    : _events(std::move(events))
{
    fatalIf(farm_size == 0,
            "ScriptedFaultSource: farm size must be >= 1");
    double last = 0.0;
    for (std::size_t i = 0; i < _events.size(); ++i) {
        const FaultEvent &event = _events[i];
        fatalIf(!std::isfinite(event.time) || event.time < 0.0,
                "ScriptedFaultSource: event " + std::to_string(i) +
                    " has a non-finite or negative time");
        fatalIf(event.time < last,
                "ScriptedFaultSource: event " + std::to_string(i) +
                    " goes back in time (events must be in "
                    "non-decreasing time order)");
        fatalIf(event.server >= farm_size,
                "ScriptedFaultSource: event " + std::to_string(i) +
                    " names server " + std::to_string(event.server) +
                    " in a farm of " + std::to_string(farm_size));
        last = event.time;
    }
}

bool
ScriptedFaultSource::next(FaultEvent &out)
{
    if (_cursor == _events.size())
        return false;
    out = _events[_cursor++];
    return true;
}

void
ScriptedFaultSource::reset(std::uint64_t)
{
    _cursor = 0;
}

std::unique_ptr<FaultSource>
ScriptedFaultSource::clone() const
{
    return std::unique_ptr<ScriptedFaultSource>(
        new ScriptedFaultSource(*this));
}

// ----------------------------------------------------- registry, helpers

Registry<FaultSourceFactory> &
faultSourceRegistry()
{
    static Registry<FaultSourceFactory> registry = [] {
        Registry<FaultSourceFactory> r("fault source");
        r.add("none", [](const FaultSourceConfig &) {
            return std::make_unique<NoFaultSource>();
        });
        r.add("mtbf", [](const FaultSourceConfig &config) {
            return std::make_unique<MtbfFaultSource>(
                config.farmSize, config.mtbf, config.mttr, config.seed);
        });
        r.add("correlated", [](const FaultSourceConfig &config) {
            return std::make_unique<CorrelatedFaultSource>(
                config.farmSize, config.correlatedGroup, config.mtbf,
                config.mttr, config.seed);
        });
        r.add("scripted", [](const FaultSourceConfig &config) {
            return std::make_unique<ScriptedFaultSource>(
                config.farmSize, config.script);
        });
        return r;
    }();
    return registry;
}

std::unique_ptr<FaultSource>
makeFaultSource(const std::string &name, const FaultSourceConfig &config)
{
    return faultSourceRegistry().get(name)(config);
}

std::vector<FaultEvent>
materializeFaults(FaultSource &source, double horizon,
                  std::size_t max_events)
{
    std::vector<FaultEvent> events;
    FaultEvent event;
    while (events.size() < max_events && source.next(event)) {
        if (event.time >= horizon)
            break;
        events.push_back(event);
    }
    return events;
}

} // namespace sleepscale
